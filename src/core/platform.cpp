#include "core/platform.hpp"

#include <filesystem>

#include "telemetry/telemetry.hpp"
#include "workload/apps.hpp"

namespace vdap::core {

namespace fs = std::filesystem;

OpenVdap::OpenVdap(sim::Simulator& sim, PlatformConfig config)
    : sim_(sim), config_(std::move(config)) {
  // --- storage --------------------------------------------------------------
  if (config_.ddi_dir.empty()) {
    ddi_dir_ = (fs::temp_directory_path() /
                ("openvdap-" + config_.vehicle_name + "-" +
                 std::to_string(sim_.seed())))
                   .string();
    fs::remove_all(ddi_dir_);
    owns_ddi_dir_ = true;
  } else {
    ddi_dir_ = config_.ddi_dir;
  }

  // --- VCU -------------------------------------------------------------------
  board_ = std::make_unique<hw::VcuBoard>(sim_, config_.vehicle_name + "-vcu");
  if (config_.reference_board) {
    hw::populate_reference_1sthep(*board_);
    for (const auto& dev : board_->devices()) registry_.join(dev.get());
  }
  dsf_ = std::make_unique<vcu::Dsf>(
      sim_, registry_, std::make_unique<vcu::GreedyEftScheduler>());

  // --- network + OS -----------------------------------------------------------
  topo_ = std::make_unique<net::Topology>(sim_);
  os_ = std::make_unique<edgeos::EdgeOSv>(sim_, *dsf_, *topo_,
                                          config_.vehicle_secret,
                                          config_.security, config_.elastic);

  auto attach = [&](net::Tier tier, hw::ComputeDevice* shared,
                    std::unique_ptr<hw::ComputeDevice>& owned,
                    hw::ProcessorSpec spec) {
    if (shared != nullptr) {
      os_->elastic().set_remote_device(tier, shared);
    } else if (config_.with_remote_tiers) {
      owned = std::make_unique<hw::ComputeDevice>(sim_, std::move(spec));
      os_->elastic().set_remote_device(tier, owned.get());
    }
  };
  attach(net::Tier::kRsuEdge, config_.shared_rsu, rsu_server_,
         hw::catalog::rsu_edge_server());
  attach(net::Tier::kBaseStationEdge, config_.shared_basestation, bs_server_,
         hw::catalog::basestation_edge_server());
  attach(net::Tier::kCloud, config_.shared_cloud, cloud_server_,
         hw::catalog::cloud_server());

  // --- DDI + libvdap ----------------------------------------------------------
  ddi::DdiOptions ddi_opts;
  ddi_opts.disk.dir = ddi_dir_;
  ddi_ = std::make_unique<ddi::Ddi>(sim_, ddi_opts);
  api_ = std::make_unique<libvdap::LibVdap>(
      libvdap::ModelRegistry::with_default_catalog(), registry_, *ddi_);

  offload_ = std::make_unique<OffloadPlanner>(os_->elastic());
  if (config_.health.enabled) {
    health_ = std::make_unique<HealthController>(sim_, os_->elastic(),
                                                 config_.health);
    os_->elastic().set_run_observer(
        [this](const edgeos::ServiceRunReport& rep) { health_->on_run(rep); });
  }
  collab_ = std::make_unique<CollaborationCache>(
      sim_, config_.vehicle_name, os_->pseudonyms().pseudonym(sim_.now()));

  if (config_.start_collectors) {
    auto sink = [this](ddi::DataRecord rec) { ddi_->upload(std::move(rec)); };
    obd_ = std::make_unique<ddi::ObdCollector>(sim_, sink);
    weather_ = std::make_unique<ddi::WeatherFeed>(sim_, sink);
    traffic_ = std::make_unique<ddi::TrafficFeed>(sim_, sink);
    social_ = std::make_unique<ddi::SocialFeed>(sim_, sink);
    obd_->start();
    weather_->start();
    traffic_->start();
    social_->start();
  }

  if (telemetry::on()) {
    json::Object args;
    args["vehicle"] = config_.vehicle_name;
    args["devices"] = static_cast<std::int64_t>(board_->devices().size());
    args["remote_tiers"] = config_.with_remote_tiers;
    telemetry::tracer().instant(sim_.now(), "platform", "platform.boot",
                                "platform", std::move(args));
    telemetry::count("platform.boots");
  }
}

OpenVdap::~OpenVdap() {
  if (owns_ddi_dir_) {
    std::error_code ec;
    fs::remove_all(ddi_dir_, ec);  // best effort
  }
}

hw::ComputeDevice* OpenVdap::remote_device(net::Tier tier) {
  switch (tier) {
    case net::Tier::kRsuEdge:
      return config_.shared_rsu != nullptr ? config_.shared_rsu
                                           : rsu_server_.get();
    case net::Tier::kBaseStationEdge:
      return config_.shared_basestation != nullptr
                 ? config_.shared_basestation
                 : bs_server_.get();
    case net::Tier::kCloud:
      return config_.shared_cloud != nullptr ? config_.shared_cloud
                                             : cloud_server_.get();
    default: return nullptr;
  }
}

void OpenVdap::install_standard_services() {
  using edgeos::IsolationMode;
  using edgeos::make_polymorphic_multi;
  const std::vector<net::Tier> tiers = {net::Tier::kRsuEdge,
                                        net::Tier::kCloud};
  // Safety-critical ADAS runs in the TEE (§IV-C: "the key and
  // safety-critical applications could rely on the trusted execution
  // environment").
  os_->install_service(
      make_polymorphic_multi(workload::apps::lane_detection(), tiers),
      IsolationMode::kTee);
  os_->install_service(
      make_polymorphic_multi(workload::apps::pedestrian_detection(), tiers),
      IsolationMode::kTee);
  // Everything else gets containers.
  os_->install_service(
      make_polymorphic_multi(workload::apps::obd_diagnostics(), tiers),
      IsolationMode::kContainer);
  os_->install_service(
      make_polymorphic_multi(workload::apps::infotainment_chunk(), tiers),
      IsolationMode::kContainer);
  os_->install_service(
      make_polymorphic_multi(workload::apps::license_plate_pipeline(), tiers),
      IsolationMode::kContainer);
  os_->install_service(
      make_polymorphic_multi(workload::apps::a3_kidnapper_search(), tiers),
      IsolationMode::kContainer);
  os_->install_service(
      make_polymorphic_multi(workload::apps::speech_assistant(), tiers),
      IsolationMode::kContainer);
  telemetry::count("platform.services_installed", 7);
}

}  // namespace vdap::core
