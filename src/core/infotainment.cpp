#include "core/infotainment.hpp"

#include <algorithm>
#include <stdexcept>

namespace vdap::core {

namespace {
workload::AppDag decode_dag(double gflop) {
  workload::AppDag dag("infotainment-decode",
                       workload::ServiceCategory::kInfotainment, {0, 1, 0});
  dag.add_task({"h264-decode", hw::TaskClass::kCodec, gflop, 0, 0, true});
  return dag;
}
}  // namespace

InfotainmentSession::InfotainmentSession(sim::Simulator& sim,
                                         net::Topology& topo, vcu::Dsf& dsf,
                                         InfotainmentOptions options)
    : sim_(sim), topo_(topo), dsf_(dsf), options_(options) {}

void InfotainmentSession::start(
    int total_chunks, std::function<void(const InfotainmentReport&)> done) {
  if (total_chunks <= 0) throw std::invalid_argument("need >= 1 chunk");
  total_chunks_ = total_chunks;
  done_ = std::move(done);
  session_start_ = sim_.now();
  maybe_fetch();
}

void InfotainmentSession::maybe_fetch() {
  while (!finished_ && requested_ < total_chunks_ &&
         buffered_ + in_flight_ < options_.buffer_target_chunks) {
    ++requested_;
    ++in_flight_;
    std::uint64_t bytes = options_.chunk_bytes;
    if (!options_.abr_ladder.empty()) {
      // Buffer-based rung selection (BBA-style): map buffer fullness in
      // [0, target] linearly onto the ladder.
      if (report_.rung_fetches.size() != options_.abr_ladder.size()) {
        report_.rung_fetches.assign(options_.abr_ladder.size(), 0);
      }
      // Normalize by target-1: fetches only fire while the buffer is below
      // target, so `buffered == target-1` is the fullest observable state
      // and must map to the top rung.
      int span = std::max(1, options_.buffer_target_chunks - 1);
      double fullness =
          std::min(1.0, static_cast<double>(buffered_) / span);
      auto rung = static_cast<std::size_t>(
          fullness * static_cast<double>(options_.abr_ladder.size() - 1) +
          0.5);
      rung = std::min(rung, options_.abr_ladder.size() - 1);
      bytes = options_.abr_ladder[rung];
      ++report_.rung_fetches[rung];
    }
    topo_.transfer_down(options_.source, bytes,
                        [this](const net::TransferOutcome& out) {
                          on_chunk_downloaded(out.delivered);
                        });
  }
}

void InfotainmentSession::on_chunk_downloaded(bool delivered) {
  if (finished_) return;
  if (!delivered) {
    --in_flight_;
    ++report_.chunks_failed;
    ++delivered_;
    if (delivered_ >= total_chunks_) {
      finish();
    } else {
      maybe_fetch();
    }
    return;
  }
  // Decode on the VCU.
  dsf_.submit(decode_dag(options_.decode_gflop),
              [this](const vcu::DagRun& run) { on_chunk_decoded(run.ok); });
}

void InfotainmentSession::on_chunk_decoded(bool ok) {
  if (finished_) return;
  --in_flight_;
  if (!ok) {
    ++report_.chunks_failed;
    ++delivered_;
    if (delivered_ >= total_chunks_) {
      finish();
      return;
    }
    maybe_fetch();
    return;
  }
  ++buffered_;
  if (!started_playing_) {
    if (buffered_ >= options_.startup_chunks) {
      started_playing_ = true;
      report_.startup_delay = sim_.now() - session_start_;
      play_next();
    }
  } else if (stalled_) {
    // Buffer refilled: resume playback.
    stalled_ = false;
    report_.stall_time += sim_.now() - stall_start_;
    play_next();
  }
  maybe_fetch();
}

void InfotainmentSession::play_next() {
  if (finished_) return;
  if (buffered_ == 0) {
    // Dry buffer mid-session: stall until the next chunk decodes.
    stalled_ = true;
    ++report_.stalls;
    stall_start_ = sim_.now();
    return;
  }
  --buffered_;
  maybe_fetch();  // playback frees a buffer slot
  sim_.after(sim::from_seconds(options_.chunk_seconds), [this]() {
    if (finished_) return;
    ++report_.chunks_played;
    ++delivered_;
    if (delivered_ >= total_chunks_) {
      finish();
    } else {
      play_next();
    }
  });
}

void InfotainmentSession::finish() {
  if (finished_) return;
  finished_ = true;
  if (stalled_) {
    report_.stall_time += sim_.now() - stall_start_;
    stalled_ = false;
  }
  report_.watch_time = sim_.now() - session_start_;
  if (done_) done_(report_);
}

}  // namespace vdap::core
