// Multi-vehicle fleet scenario (DESIGN.md §6e/§6g): N OpenVdap platforms
// in one simulator, each running the same staggered service schedule and
// shipping its telemetry (latency samples, run counters, health events,
// location fixes) through a per-vehicle TelemetryShipper over one SHARED
// shipping net::Topology to a sharded columnar ingest backend at the
// cloud tier — the paper's XEdge/cloud observing a fleet at once (§III,
// Fig. 1). Each vehicle's ingest shard is co-hosted with its sim shard,
// so frames are absorbed on the shard thread that delivered them; MAD
// anomaly detection runs unthrottled at every epoch barrier.
//
// Fault plans address two surfaces:
//   * "cav-<i>/proc:<j>" processor faults hit one vehicle's board (the
//     compute-outlier experiment);
//   * plain tier names ("cloud", "basestation-edge") hit the shared
//     shipping topology via one ImpairmentController — everybody's
//     frames suffer together (the shipper-accounting experiment).
// Everything is driven by the sim clock and named RNG streams, so a
// (seed, plan) pair reproduces the outcome — frames, tables, anomalies —
// byte for byte; the `fleet` ctest label asserts it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/faults.hpp"
#include "telemetry/fleet/ingest.hpp"
#include "telemetry/fleet/shipper.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/prof/profiler.hpp"

namespace vdap::core {

struct FleetConfig {
  int vehicles = 6;
  std::uint64_t seed = 7;
  /// Sharded execution (DESIGN.md §6f): vehicles are partitioned
  /// round-robin over `shards` per-shard simulators (each owning its
  /// vehicles, their links and a copy of the shipping topology) advancing
  /// in `epoch`-long lock-step epochs on `threads` worker threads.
  /// Telemetry frames cross shards only at epoch boundaries, merged in
  /// (time, vehicle, seq) order — so the outcome is byte-identical across
  /// shard AND thread counts per (seed, plan).
  int shards = 1;
  int threads = 1;
  sim::SimDuration epoch = sim::seconds(1);
  /// Distinguishes DDI temp dirs of concurrently running scenarios.
  std::string dir_tag = "fleet";
  /// Services every vehicle releases round-robin.
  std::vector<std::string> services = {"license-plate", "obd-diagnostics"};
  sim::SimDuration release_period = sim::seconds(2);
  /// Stop releasing load here (runs in flight still finish)...
  sim::SimTime load_until = sim::seconds(150);
  /// ...keep the fleet (and the fault plan) running until here...
  sim::SimTime run_until = sim::minutes(3);
  /// ...then heal, flush every shipper and drain this much longer.
  sim::SimDuration drain = sim::seconds(45);
  /// On-board-only compute (no private remote tiers): a processor fault
  /// shows up in the vehicle's service latency instead of being offloaded
  /// around.
  bool remote_tiers = false;
  /// Per-vehicle closed-loop SLO health; its events ride the wire frames.
  bool health = true;
  /// Vehicles report deterministic loc.x/loc.y fixes on this period (0
  /// disables) — the channel `near` queries resolve against.
  sim::SimDuration location_period = sim::seconds(5);
  telemetry::fleet::TelemetryShipper::Options shipper;
  /// Cloud-side ingest knobs. `shards`/`threads` are overridden by the
  /// runner: one ingest shard per sim shard, driven by the sim threads.
  telemetry::fleet::IngestOptions ingest;
  /// DDI-style query lines (see telemetry/fleet/query.hpp) executed
  /// against the fused store after the drain; rendered tables land in
  /// FleetOutcome::query_results in the same order.
  std::vector<std::string> queries;
  /// Capture telemetry while running: per-shard domains merged at epoch
  /// barriers (DESIGN.md §6h). Unlike run_fleet_scale, the full platform
  /// duplicates some instrumentation per shard world (shared shipping
  /// topology, tier links), so exports are byte-identical across *thread*
  /// counts for a fixed shard count, but scale with the shard count; the
  /// frames/tables above stay geometry-invariant regardless.
  bool capture = false;
  /// Always-on flight recorder (DESIGN.md §6i). The full platform mirrors
  /// metrics from per-shard-world infrastructure (shared topology copies,
  /// tier links), so this path defaults mirror_metrics OFF and records the
  /// entity-partitioned streams instead: health edges (one per vehicle),
  /// fault activations (shard 0's injector only — every injector is armed
  /// with the same plan, so its trace IS the trace) and explicit
  /// incidents. With those streams the bundle bytes are geometry-invariant
  /// per (seed, plan) whenever flight_scratch_dropped == 0.
  bool flight = false;
  telemetry::FlightRecorder::Options flight_opts = flight_default_opts();
  /// Schedule telemetry::incident("scripted") on shard 0 at this sim time
  /// (0 = off).
  sim::SimTime flight_incident_at = 0;

  static telemetry::FlightRecorder::Options flight_default_opts() {
    telemetry::FlightRecorder::Options o;
    o.mirror_metrics = false;
    o.mirror_spans = false;
    return o;
  }

  /// Continuous profiling plane (DESIGN.md §6j): attach a sampling
  /// profiler to the run and export collapsed-stack artifacts
  /// (profile_jsonl / profile_folded in the outcome). Purely wall-plane:
  /// the sampler only reads seqlock-published tag stacks, so every
  /// deterministic output above is byte-identical with prof on or off —
  /// the `prof` test suite proves it across the shard × thread matrix.
  bool prof = false;
  telemetry::prof::ProfOptions prof_opts;
};

struct FleetVehicleStats {
  std::uint64_t frames_enqueued = 0;
  std::uint64_t frames_acked = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t send_attempts = 0;
  std::uint64_t retries = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t releases = 0;
  std::uint64_t reports = 0;
  std::uint64_t completed_ok = 0;
};

struct FleetOutcome {
  // Aggregator-side report (byte-identical per (seed, plan)).
  std::string rollup_table;
  std::string anomaly_table;
  std::string vehicle_table;
  std::vector<telemetry::fleet::FleetAnomaly> anomalies;
  std::vector<std::string> anomalous_vehicles;
  /// Every delivered frame, in delivery order, one JSON line each —
  /// feed it to `vdap-report --fleet`.
  std::string frames_jsonl;
  /// Rendered tables for FleetConfig::queries (parse errors inline).
  std::vector<std::string> query_results;

  // Transport accounting.
  std::map<std::string, FleetVehicleStats> vehicles;
  std::uint64_t frames_ingested = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t reordered = 0;
  std::uint64_t lost_frames = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t samples_ingested = 0;
  std::uint64_t detect_passes = 0;
  std::uint64_t detect_scanned = 0;

  // Run accounting + determinism evidence.
  std::uint64_t releases = 0;
  std::uint64_t reports = 0;
  std::uint64_t completed_ok = 0;
  std::uint64_t epochs = 0;        // lock-step barriers crossed
  std::uint64_t epoch_batches = 0; // non-empty cross-shard frame batches
  std::vector<std::string> fault_trace;

  // Capture-plane artifacts (empty / zero unless config.capture); see
  // FleetConfig::capture for the invariance contract.
  std::string chrome_trace;
  std::string metrics_jsonl;
  std::uint64_t trace_events = 0;
  std::uint64_t open_spans = 0;
  std::uint64_t metric_keys = 0;

  /// Runtime-plane shard report (always produced; wall-clock derived).
  std::string shards_jsonl;

  // Flight-recorder plane (zero / empty unless config.flight); see
  // FleetConfig::flight for the invariance contract.
  std::uint64_t flight_folded = 0;
  std::uint64_t flight_triggers = 0;
  std::uint64_t flight_scratch_dropped = 0;
  std::string flight_rings;
  std::vector<telemetry::FlightRecorder::Bundle> flight_bundles;

  // Profiling plane (empty / zero unless config.prof); wall-clock
  // sampled, diagnostic only — see FleetConfig::prof.
  std::string profile_jsonl;
  std::string profile_folded;
  std::uint64_t prof_samples = 0;
};

/// Canned plan: slow every processor of vehicle `vehicle_index` to
/// `severity` of its speed for a mid-run window — the one-sick-vehicle
/// experiment the fleet ctest runs.
sim::FaultPlan fleet_compute_outlier_plan(int vehicle_index,
                                          double severity = 0.45);

/// Canned plan: outage + degradation windows on the shared shipping
/// uplink, forcing shipper retries, backoff and queue-overflow drops.
sim::FaultPlan fleet_uplink_chaos_plan();

FleetOutcome run_fleet(const sim::FaultPlan& plan, const FleetConfig& config);

}  // namespace vdap::core
