// Fleet-at-scale scenario (DESIGN.md §6f): the 100k-vehicle stress path
// for the sharded simulator. Unlike run_fleet (full OpenVdap platforms,
// DDI on disk, elastic managers — heavyweight per vehicle), each vehicle
// here is just a synthetic latency producer feeding a REAL
// TelemetryShipper over a REAL net::Link, so the hot loop exercises the
// calendar queue, the RNG streams, the wire codec and the transport —
// the parts whose scaling the bench gate tracks.
//
// Aggregation is shard-local by design: the deliver callback decodes and
// folds each wire frame into its vehicle's running FNV-1a digest on the
// shard's own worker thread (a vehicle lives entirely on one shard, so no
// locking). The committed outcome — per-vehicle digests combined in
// vehicle-index order plus summed transport stats — is therefore a pure
// function of (seed, config), byte-identical across shard AND thread
// counts; tests/sharded_test.cpp sweeps both to prove it, and
// bench_shard.cpp commits the digest for 1k..100k fleets.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/fleet/ingest.hpp"
#include "telemetry/fleet/shipper.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/prof/profiler.hpp"

namespace vdap::sim {
class ShardedSimulator;
}  // namespace vdap::sim

namespace vdap::core {

struct FleetScaleConfig {
  int vehicles = 1000;
  std::uint64_t seed = 7;
  /// Sharded execution knobs (see FleetConfig): output is byte-identical
  /// across shards/threads per (seed, rest-of-config).
  int shards = 1;
  int threads = 1;
  sim::SimDuration epoch = sim::seconds(1);
  /// Every vehicle draws `samples_per_tick` latency samples from its own
  /// "scale.load/<i>" stream each `sample_period`.
  sim::SimDuration sample_period = sim::msec(500);
  int samples_per_tick = 4;
  /// Stop producing here, then drain the shipper queues this much longer.
  sim::SimTime run_until = sim::seconds(10);
  sim::SimDuration drain = sim::seconds(10);
  telemetry::fleet::TelemetryShipper::Options shipper;
  /// Also feed every delivered frame into a hosted ShardedIngestBackend
  /// (one ingest shard per sim shard, MAD detection at epoch barriers).
  /// OFF by default: the digest path and its committed bench baselines
  /// are byte-for-byte unaffected unless this is set.
  bool ingest_backend = false;
  telemetry::fleet::IngestOptions ingest;
  /// Capture telemetry while running: per-shard domains bound on the
  /// worker shards, merged deterministically at epoch barriers (DESIGN.md
  /// §6h). The exported artifacts below are byte-identical across the
  /// shard × thread matrix per (seed, rest-of-config); the digest path is
  /// unaffected either way.
  bool capture = false;
  /// Always-on flight recorder (DESIGN.md §6i): one fixed-memory scratch
  /// ring per shard plus a coordinator ring, folded into a canonical
  /// master ring at every epoch barrier. Works with capture off; the
  /// digest path is byte-for-byte unaffected either way.
  bool flight = false;
  telemetry::FlightRecorder::Options flight_opts;
  /// Schedule telemetry::incident("scripted") on shard 0 at this sim time
  /// (0 = off). Because the trigger rides the sim clock, the resulting
  /// bundle is byte-identical across the shard × thread matrix.
  sim::SimTime flight_incident_at = 0;
  /// Arm the fatal-signal crash dump (requires flight_opts.dir): on
  /// SIGSEGV/SIGABRT/... an async-signal-safe handler streams the raw
  /// rings and a minimal manifest to <dir>/incident-crash/.
  bool flight_crash_dump = false;
  /// Continuous profiling plane (DESIGN.md §6j): run a sampling profiler
  /// alongside the fleet and export collapsed-stack artifacts
  /// (profile_jsonl / profile_folded below). Wall-plane only — the digest,
  /// capture and flight outputs are byte-for-byte unaffected either way.
  bool prof = false;
  telemetry::prof::ProfOptions prof_opts;
  /// Test hook: runs after all wiring (recorder bound, vehicles built)
  /// and before the first run_until — e.g. the death test schedules a
  /// mid-run abort here.
  std::function<void(sim::ShardedSimulator&)> prepare;
};

struct FleetScaleOutcome {
  int vehicles = 0;
  int shards = 0;
  int threads = 0;
  std::uint64_t epochs = 0;
  std::uint64_t events_fired = 0;

  // Summed transport accounting (shard-order independent: per-vehicle
  // stats summed in vehicle-index order).
  std::uint64_t frames_delivered = 0;
  std::uint64_t frames_enqueued = 0;
  std::uint64_t frames_dropped = 0;
  std::uint64_t wire_bytes = 0;
  std::uint64_t samples_delivered = 0;
  std::uint64_t decode_errors = 0;

  /// FNV-1a fold of every vehicle's delivery-ordered frame digest, in
  /// vehicle-index order — the one number the byte-identity sweep and the
  /// bench baseline pin down.
  std::uint64_t digest = 0;

  /// One-line deterministic summary (digest + totals).
  std::string summary;

  // Ingest-backend accounting (zero / empty unless config.ingest_backend).
  std::uint64_t frames_ingested = 0;
  std::uint64_t samples_ingested = 0;
  std::uint64_t ingest_anomalies = 0;
  std::uint64_t detect_passes = 0;
  std::uint64_t detect_scanned = 0;
  /// One-line deterministic ingest summary ("" when the backend is off).
  std::string ingest_summary;

  // Capture-plane artifacts (empty / zero unless config.capture). All of
  // them are part of the byte-identity contract.
  std::string chrome_trace;   // merged Chrome trace-event JSON
  std::string metrics_jsonl;  // one metrics snapshot line (end of run)
  std::uint64_t trace_events = 0;
  std::uint64_t open_spans = 0;  // must drain to 0
  std::uint64_t metric_keys = 0;

  /// Runtime-plane shard report (always produced; wall-clock derived —
  /// NOT byte-identical, see telemetry/shard_report.hpp).
  std::string shards_jsonl;

  // Flight-recorder plane (zero / empty unless config.flight). The
  // deterministic pieces — flight_rings, bundle manifests and rings —
  // are part of the byte-identity contract whenever
  // flight_scratch_dropped == 0; runtime.jsonl inside bundles is not.
  std::uint64_t flight_folded = 0;
  std::uint64_t flight_triggers = 0;
  std::uint64_t flight_scratch_dropped = 0;
  /// End-of-run serialization of the master ring (VFR1 wire format).
  std::string flight_rings;
  std::vector<telemetry::FlightRecorder::Bundle> flight_bundles;

  // Profiling plane (empty / zero unless config.prof); wall-clock
  // sampled, diagnostic only — never part of the byte-identity contract.
  std::string profile_jsonl;   // meta line + per-slot collapsed stacks
  std::string profile_folded;  // merged flamegraph.pl input
  std::uint64_t prof_samples = 0;
};

FleetScaleOutcome run_fleet_scale(const FleetScaleConfig& config);

}  // namespace vdap::core
