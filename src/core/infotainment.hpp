// In-vehicle infotainment streaming (§II-C): "video or audio data must be
// downloaded from the Internet and then decoded locally ... these
// applications not only require compute resources but also present a high
// requirement on the network bandwidth."
//
// InfotainmentSession models a buffered streaming player: chunks download
// over the cellular downlink (paying real transfer time under the current
// mobility conditions), decode on the VCU through DSF, and play back at
// real time. When the buffer runs dry the player stalls — the
// quality-of-experience metric bench_infotainment (A11) sweeps against
// vehicle speed.
#pragma once

#include <functional>
#include <vector>

#include "net/topology.hpp"
#include "vcu/dsf.hpp"

namespace vdap::core {

struct InfotainmentOptions {
  net::Tier source = net::Tier::kCloud;
  std::uint64_t chunk_bytes = 1'500'000;     // ~6 Mbps stream, 2 s chunks
  double chunk_seconds = 2.0;                // playback time per chunk
  int buffer_target_chunks = 3;              // prefetch depth
  int startup_chunks = 1;                    // chunks needed to start
  double decode_gflop = 3.0;                 // H.264 decode per chunk

  /// Adaptive bitrate: when non-empty, each fetch picks a rung from this
  /// ladder (chunk bytes per quality level, ascending) using a buffer-based
  /// policy (BBA-style): low buffer → lowest rung, full buffer → highest,
  /// linear in between. `chunk_bytes` is ignored when the ladder is set.
  std::vector<std::uint64_t> abr_ladder;
};

struct InfotainmentReport {
  int chunks_played = 0;
  int chunks_failed = 0;       // undownloadable after retries
  int stalls = 0;              // buffer-dry events after startup
  sim::SimDuration startup_delay = 0;
  sim::SimDuration stall_time = 0;
  sim::SimDuration watch_time = 0;  // wall time from start() to stop
  /// With ABR: how many fetches used each ladder rung (empty otherwise).
  std::vector<int> rung_fetches;
  /// Mean ladder rung fetched (0 = lowest), the ABR quality metric.
  double mean_rung() const {
    double n = 0, sum = 0;
    for (std::size_t i = 0; i < rung_fetches.size(); ++i) {
      n += rung_fetches[i];
      sum += static_cast<double>(i) * rung_fetches[i];
    }
    return n > 0 ? sum / n : 0.0;
  }

  /// Fraction of the session spent stalled (startup excluded).
  double rebuffer_ratio() const {
    sim::SimDuration denom = watch_time - startup_delay;
    return denom > 0 ? static_cast<double>(stall_time) / denom : 0.0;
  }
};

class InfotainmentSession {
 public:
  InfotainmentSession(sim::Simulator& sim, net::Topology& topo,
                      vcu::Dsf& dsf, InfotainmentOptions options = {});

  /// Starts fetching and playing. `done` fires when `total_chunks` have
  /// played (or permanently failed).
  void start(int total_chunks,
             std::function<void(const InfotainmentReport&)> done = nullptr);

  // Live state, for tests/telemetry.
  int buffered_chunks() const { return buffered_; }
  bool stalled() const { return stalled_; }
  const InfotainmentReport& report() const { return report_; }

 private:
  void maybe_fetch();
  void on_chunk_downloaded(bool delivered);
  void on_chunk_decoded(bool ok);
  void play_next();
  void finish();

  sim::Simulator& sim_;
  net::Topology& topo_;
  vcu::Dsf& dsf_;
  InfotainmentOptions options_;

  int total_chunks_ = 0;
  int requested_ = 0;    // fetches issued
  int in_flight_ = 0;    // downloads + decodes outstanding
  int buffered_ = 0;     // decoded, ready to play
  int delivered_ = 0;    // played + failed
  bool started_playing_ = false;
  bool stalled_ = false;
  bool finished_ = false;
  sim::SimTime session_start_ = 0;
  sim::SimTime stall_start_ = 0;
  InfotainmentReport report_;
  std::function<void(const InfotainmentReport&)> done_;
};

}  // namespace vdap::core
