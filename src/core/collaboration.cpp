#include "core/collaboration.hpp"

#include <memory>

namespace vdap::core {

CollaborationCache::CollaborationCache(sim::Simulator& sim,
                                       std::string vehicle_name,
                                       std::string pseudonym)
    : sim_(sim), name_(std::move(vehicle_name)),
      pseudonym_(std::move(pseudonym)) {}

void CollaborationCache::connect(CollaborationCache& a,
                                 CollaborationCache& b) {
  if (&a == &b) return;
  net::LinkSpec spec = net::links::dsrc();
  spec.name = "dsrc." + a.name_ + "->" + b.name_;
  a.peers_[b.name_] =
      Peer{&b, std::make_unique<net::Link>(a.sim_, spec)};
  spec.name = "dsrc." + b.name_ + "->" + a.name_;
  b.peers_[a.name_] =
      Peer{&a, std::make_unique<net::Link>(b.sim_, spec)};
}

void CollaborationCache::disconnect(CollaborationCache& a,
                                    CollaborationCache& b) {
  a.peers_.erase(b.name_);
  b.peers_.erase(a.name_);
}

void CollaborationCache::put(const std::string& key, json::Value value,
                             std::uint64_t result_bytes) {
  SharedResult r;
  r.key = key;
  r.value = std::move(value);
  r.produced_at = sim_.now();
  r.producer_pseudonym = pseudonym_;
  r.result_bytes = result_bytes;
  results_[key] = std::move(r);
}

std::optional<SharedResult> CollaborationCache::serve(const std::string& key) {
  auto it = results_.find(key);
  if (it == results_.end()) return std::nullopt;
  ++served_;
  return it->second;
}

void CollaborationCache::lookup(
    const std::string& key,
    std::function<void(std::optional<SharedResult>)> done) {
  auto it = results_.find(key);
  if (it != results_.end()) {
    ++local_hits_;
    done(it->second);
    return;
  }
  if (peers_.empty()) {
    ++misses_;
    done(std::nullopt);
    return;
  }
  // Fan the query out to every neighbor; resolve on the first hit, or on
  // the last miss.
  constexpr std::uint64_t kQueryBytes = 200;
  struct QueryState {
    std::size_t outstanding;
    bool resolved = false;
    std::function<void(std::optional<SharedResult>)> done;
  };
  auto state = std::make_shared<QueryState>();
  state->outstanding = peers_.size();
  state->done = std::move(done);

  for (auto& [peer_name, peer] : peers_) {
    CollaborationCache* remote = peer.cache;
    peer.link_out->send(
        kQueryBytes,
        [this, remote, key, state](const net::TransferReport& req) {
          auto finish = [this, state](std::optional<SharedResult> result) {
            --state->outstanding;
            if (state->resolved) return;
            if (result.has_value()) {
              state->resolved = true;
              ++remote_hits_;
              state->done(std::move(result));
            } else if (state->outstanding == 0) {
              ++misses_;
              state->done(std::nullopt);
            }
          };
          if (!req.delivered) {
            finish(std::nullopt);
            return;
          }
          std::optional<SharedResult> answer = remote->serve(key);
          if (!answer.has_value()) {
            finish(std::nullopt);
            return;
          }
          // Ship the response back over the peer's link to us.
          auto peer_it = remote->peers_.find(name_);
          if (peer_it == remote->peers_.end()) {
            // Drove out of range mid-query.
            finish(std::nullopt);
            return;
          }
          std::uint64_t bytes = answer->result_bytes;
          auto shared_answer =
              std::make_shared<SharedResult>(std::move(*answer));
          peer_it->second.link_out->send(
              bytes, [finish, shared_answer](const net::TransferReport& rep) {
                if (rep.delivered) {
                  finish(*shared_answer);
                } else {
                  finish(std::nullopt);
                }
              });
        });
  }
}

}  // namespace vdap::core
