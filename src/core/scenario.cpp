#include "core/scenario.hpp"

#include <cmath>
#include <stdexcept>

namespace vdap::core {

double CellularConditionModel::bandwidth_factor(double speed_mph) const {
  double v = net::mph_to_mps(speed_mph);
  return 1.0 /
         (1.0 + std::pow(v / lte.doppler_v0_mps, lte.doppler_exponent));
}

double CellularConditionModel::loss_rate(double speed_mph) const {
  double v = net::mph_to_mps(speed_mph);
  double micro = lte.micro_loss_per_mps * v;
  // Expected outage fraction: crossings per second x outage duration.
  double outage = 0.0;
  if (v > 0) {
    double crossings_per_s = v / (2.0 * lte.cell_radius_m);
    double outage_s = lte.handover_base_s +
                      lte.handover_speed_s * (v / 30.0) * (v / 30.0) +
                      std::min(1.0, lte.rlf_prob_per_mps * v) * lte.rlf_extra_s;
    outage = crossings_per_s * outage_s;
  }
  return std::min(0.9, micro + outage);
}

DriveScenario::DriveScenario(sim::Simulator& sim, net::Topology& topo,
                             std::vector<ScenarioSegment> segments,
                             edgeos::ElasticManager* elastic)
    : sim_(sim), topo_(topo), segments_(std::move(segments)),
      elastic_(elastic) {
  if (segments_.empty()) throw std::invalid_argument("empty scenario");
}

void DriveScenario::start() {
  sim::SimTime t = 0;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    sim_.after(t, [this, i]() { apply(i); });
    t += sim::from_seconds(segments_[i].duration_s);
  }
}

void DriveScenario::apply(std::size_t index) {
  const ScenarioSegment& seg = segments_[index];
  current_ = static_cast<int>(index);
  topo_.apply_cellular_condition(model_.bandwidth_factor(seg.speed_mph),
                                 model_.loss_rate(seg.speed_mph));
  topo_.set_available(net::Tier::kRsuEdge, seg.rsu_coverage);
  topo_.set_available(net::Tier::kNeighbor, seg.neighbor_present);
  if (elastic_ != nullptr) elastic_->reevaluate();
}

double DriveScenario::total_duration_s() const {
  double total = 0.0;
  for (const auto& s : segments_) total += s.duration_s;
  return total;
}

double DriveScenario::speed_mph_at(sim::SimTime t) const {
  double elapsed = sim::to_seconds(t);
  for (const auto& s : segments_) {
    if (elapsed < s.duration_s) return s.speed_mph;
    elapsed -= s.duration_s;
  }
  return segments_.back().speed_mph;
}

std::vector<ScenarioSegment> DriveScenario::from_route(
    const std::vector<SpeedStretch>& speed_profile,
    const net::CoverageMap& coverage) {
  if (speed_profile.empty()) {
    throw std::invalid_argument("empty speed profile");
  }
  std::vector<ScenarioSegment> out;
  double pos = 0.0;
  for (const SpeedStretch& stretch : speed_profile) {
    double v = net::mph_to_mps(stretch.speed_mph);
    if (v <= 0.0) {
      // Parked stretch: distance_m is reinterpreted as a dwell in meters of
      // "would-be travel" — not meaningful; treat as 60 s of parking.
      out.push_back(ScenarioSegment{60.0, 0.0, coverage.covered(pos),
                                    stretch.neighbor_present});
      continue;
    }
    double end = pos + stretch.distance_m;
    while (pos < end) {
      bool cov = coverage.covered(pos);
      auto boundary = coverage.next_boundary(pos);
      double seg_end =
          boundary.has_value() ? std::min(end, *boundary) : end;
      if (seg_end <= pos) seg_end = end;  // guard against zero advance
      out.push_back(ScenarioSegment{(seg_end - pos) / v, stretch.speed_mph,
                                    cov, stretch.neighbor_present});
      pos = seg_end;
    }
  }
  return out;
}

std::vector<ScenarioSegment> DriveScenario::commute() {
  return {
      {120.0, 0.0, true, false},    // parked, warm-up
      {240.0, 25.0, true, true},    // city, platooning neighbor
      {180.0, 35.0, true, false},   // arterial
      {360.0, 70.0, false, false},  // highway, no RSU coverage
      {180.0, 35.0, true, false},   // arterial
      {120.0, 25.0, true, true},    // city
  };
}

std::vector<ScenarioSegment> DriveScenario::parked(double duration_s) {
  return {{duration_s, 0.0, true, false}};
}

std::vector<ScenarioSegment> DriveScenario::highway_sprint(
    double duration_s) {
  return {{duration_s, 70.0, false, false}};
}

}  // namespace vdap::core
