#include "core/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string_view>
#include <utility>

#include "core/platform.hpp"
#include "net/impair.hpp"
#include "sim/sharded.hpp"
#include "telemetry/domains.hpp"
#include "telemetry/export.hpp"
#include "telemetry/shard_report.hpp"
#include "util/strings.hpp"

namespace vdap::core {

namespace fs = std::filesystem;
namespace fleet = telemetry::fleet;

sim::FaultPlan fleet_compute_outlier_plan(int vehicle_index, double severity) {
  sim::FaultPlan plan;
  plan.name = util::format("fleet-compute-outlier-%d", vehicle_index);
  // The reference 1stHEP has four devices (CPU+GPU+FPGA+ASIC); slow them
  // all so the elastic manager cannot shuffle the work to a healthy
  // sibling device and hide the fault.
  for (int j = 0; j < 4; ++j) {
    sim::FaultSpec f;
    f.name = util::format("slow-cav%d-proc%d", vehicle_index, j);
    f.kind = sim::FaultKind::kProcessorSlowdown;
    f.target = util::format("cav-%d/proc:%d", vehicle_index, j);
    f.start = sim::seconds(40);
    f.duration = sim::seconds(70);
    f.severity = severity;
    plan.faults.push_back(std::move(f));
  }
  return plan;
}

sim::FaultPlan fleet_uplink_chaos_plan() {
  sim::FaultPlan plan;
  plan.name = "fleet-uplink-chaos";

  sim::FaultSpec outage;
  outage.name = "cloud-outage";
  outage.kind = sim::FaultKind::kLinkDown;
  outage.target = "cloud";
  outage.start = sim::seconds(30);
  outage.duration = sim::seconds(25);
  plan.faults.push_back(outage);

  sim::FaultSpec degrade;
  degrade.name = "cloud-degrade";
  degrade.kind = sim::FaultKind::kLinkDegrade;
  degrade.target = "cloud";
  degrade.start = sim::seconds(70);
  degrade.duration = sim::seconds(30);
  degrade.severity = 0.25;
  degrade.extra_loss = 0.3;
  plan.faults.push_back(degrade);

  sim::FaultSpec flap;
  flap.name = "cloud-flap";
  flap.kind = sim::FaultKind::kLinkFlap;
  flap.target = "cloud";
  flap.start = sim::seconds(110);
  flap.duration = sim::seconds(30);
  flap.down_time = sim::seconds(3);
  flap.up_time = sim::seconds(4);
  flap.jitter = 0.2;
  plan.faults.push_back(flap);

  sim::FaultSpec late;
  late.name = "cloud-outage-late";
  late.kind = sim::FaultKind::kLinkDown;
  late.target = "cloud";
  late.start = sim::seconds(150);
  late.duration = sim::seconds(20);
  plan.faults.push_back(late);

  return plan;
}

FleetOutcome run_fleet(const sim::FaultPlan& plan, const FleetConfig& config) {
  const int n = std::max(config.vehicles, 2);
  const int nshards = std::clamp(config.shards, 1, n);
  std::vector<fs::path> dirs;
  for (int i = 0; i < n; ++i) {
    fs::path dir = fs::temp_directory_path() /
                   util::format("vdap-fleet-%s-%d", config.dir_tag.c_str(), i);
    fs::remove_all(dir);
    dirs.push_back(std::move(dir));
  }

  FleetOutcome out;
  {
    sim::ShardedSimulator ssim(
        config.seed,
        sim::ShardedSimulator::Options{nshards, config.threads, config.epoch});

    // Per-shard capture domains (DESIGN.md §6h). Setup code below runs
    // unbound (its instrumentation is skipped); epoch work records into
    // shard domains and the quiesced sections between runs into the
    // coordinator domain.
    std::unique_ptr<telemetry::DomainSet> domains;
    if (config.capture) {
      domains = std::make_unique<telemetry::DomainSet>(nshards);
      ssim.set_capture(domains.get());
    }

    // Each shard owns a full copy of the shipping network. Tier-named
    // fault targets impair every copy identically (same plan, same
    // per-shard jitter streams), so a vehicle's transport sees the same
    // conditions no matter which shard hosts it.
    struct ShardWorld {
      std::unique_ptr<net::Topology> ship_topo;
      std::unique_ptr<net::ImpairmentController> imp;
      std::unique_ptr<sim::FaultInjector> inj;
      std::map<std::string, std::vector<std::uint64_t>> tokens;
      std::map<std::string, hw::ProcessorSpec> saved_specs;
      std::map<int, OpenVdap*> local;  // global vehicle index -> platform
    };
    std::vector<ShardWorld> worlds(static_cast<std::size_t>(nshards));
    for (int s = 0; s < nshards; ++s) {
      ShardWorld& w = worlds[static_cast<std::size_t>(s)];
      w.ship_topo = std::make_unique<net::Topology>(ssim.shard(s));
      w.imp = std::make_unique<net::ImpairmentController>(*w.ship_topo);
      w.inj = std::make_unique<sim::FaultInjector>(ssim.shard(s));
    }

    // --- platforms -------------------------------------------------------
    std::vector<std::unique_ptr<OpenVdap>> cars;
    for (int i = 0; i < n; ++i) {
      const int s = ssim.shard_of(static_cast<std::uint64_t>(i));
      PlatformConfig cfg;
      cfg.vehicle_name = util::format("cav-%d", i);
      cfg.vehicle_secret = 0xC0FFEE00 + static_cast<std::uint64_t>(i);
      cfg.ddi_dir = dirs[static_cast<std::size_t>(i)].string();
      cfg.with_remote_tiers = config.remote_tiers;
      cfg.health.enabled = config.health;
      cars.push_back(std::make_unique<OpenVdap>(ssim.shard(s), cfg));
      cars.back()->install_standard_services();
      worlds[static_cast<std::size_t>(s)].local[i] = cars.back().get();
    }

    // --- ingest backend + shippers --------------------------------------
    // One ingest shard per sim shard (hosted mode): a vehicle's frames
    // are absorbed into its own ingest shard by the sim thread that
    // delivered them, so ingest scales with the sim instead of
    // serializing on the coordinator. Every observable output of the
    // backend is merged in vehicle-/metric-name order, so the outcome is
    // byte-identical across shard and thread counts; the frame batch
    // still crosses to the coordinator (in canonical (time, vehicle,
    // seq) order) to build frames_jsonl.
    fleet::IngestOptions ingest_opts = config.ingest;
    ingest_opts.shards = nshards;
    ingest_opts.threads = 1;  // driven by the sim threads, not a pool
    fleet::ShardedIngestBackend backend(ingest_opts);
    ssim.set_epoch_sink([&out, &backend](
                            sim::SimTime,
                            std::vector<sim::ShardMessage>&& batch) {
      // Detection runs at EVERY epoch barrier (shards quiesced) — the
      // PR-4 detect-period ingest throttle is gone.
      backend.barrier();
      if (batch.empty()) return;
      for (const sim::ShardMessage& m : batch) {
        out.frames_jsonl += m.payload;
        out.frames_jsonl += '\n';
      }
      ++out.epoch_batches;
    });
    std::vector<std::unique_ptr<fleet::TelemetryShipper>> shippers;
    for (int i = 0; i < n; ++i) {
      const int s = ssim.shard_of(static_cast<std::uint64_t>(i));
      sim::Simulator* shard_sim = &ssim.shard(s);
      shippers.push_back(std::make_unique<fleet::TelemetryShipper>(
          *shard_sim, cars[static_cast<std::size_t>(i)]->name(),
          *worlds[static_cast<std::size_t>(s)].ship_topo,
          [&ssim, &backend, s, i, shard_sim](const std::string& bytes) {
            PROF_SCOPE("fleet/deliver");
            backend.ingest_on_shard(s, bytes);
            ssim.post(s, shard_sim->now(), static_cast<std::uint64_t>(i),
                      bytes);
          },
          config.shipper));
      shippers.back()->start();
      if (HealthController* health = cars[static_cast<std::size_t>(i)]->health()) {
        fleet::TelemetryShipper* shipper = shippers.back().get();
        health->set_event_sink(
            [shipper](const telemetry::analysis::HealthEvent& ev) {
              shipper->on_health_event(ev);
            });
      }
    }

    // --- fault injectors (one per shard, all armed with the full plan) ---
    for (int s = 0; s < nshards; ++s) {
      ShardWorld& w = worlds[static_cast<std::size_t>(s)];
      sim::FaultInjector& inj = *w.inj;
      net::ImpairmentController* imp = w.imp.get();
      auto link_toggle = [imp](const sim::FaultSpec& f, bool begin) {
        auto t = net::tier_from_string(f.target);
        if (!t) return;
        if (begin) {
          imp->link_down(*t);
        } else {
          imp->link_up(*t);
        }
      };
      inj.on(sim::FaultKind::kLinkDown, link_toggle);
      inj.on(sim::FaultKind::kLinkFlap, link_toggle);

      inj.on(sim::FaultKind::kLinkDegrade,
             [&w](const sim::FaultSpec& f, bool begin) {
               auto t = net::tier_from_string(f.target);
               if (!t) return;
               if (begin) {
                 w.tokens[f.name].push_back(
                     w.imp->degrade(*t, f.severity, f.extra_loss));
               } else if (!w.tokens[f.name].empty()) {
                 w.imp->restore(w.tokens[f.name].back());
                 w.tokens[f.name].pop_back();
               }
             });
      inj.on(sim::FaultKind::kCellularCollapse,
             [&w](const sim::FaultSpec& f, bool begin) {
               if (begin) {
                 w.tokens[f.name].push_back(
                     w.imp->cellular_collapse(f.severity, f.extra_loss));
               } else if (!w.tokens[f.name].empty()) {
                 w.imp->restore(w.tokens[f.name].back());
                 w.tokens[f.name].pop_back();
               }
             });

      // Processor faults bite only on the shard hosting the target
      // vehicle; every other shard's injector records the window in its
      // trace and moves on.
      auto fleet_device = [&w](const std::string& target) -> hw::ComputeDevice* {
        int vi = -1;
        int pj = -1;
        if (std::sscanf(target.c_str(), "cav-%d/proc:%d", &vi, &pj) != 2) {
          return nullptr;
        }
        auto it = w.local.find(vi);
        if (it == w.local.end()) return nullptr;
        const auto& devs = it->second->board().devices();
        if (pj < 0 || static_cast<std::size_t>(pj) >= devs.size()) {
          return nullptr;
        }
        return devs[static_cast<std::size_t>(pj)].get();
      };
      inj.on(sim::FaultKind::kProcessorSlowdown,
             [&w, fleet_device](const sim::FaultSpec& f, bool begin) {
               hw::ComputeDevice* dev = fleet_device(f.target);
               if (dev == nullptr) return;
               if (begin) {
                 w.saved_specs[f.name] = dev->spec();
                 hw::ProcessorSpec slow = dev->spec();
                 for (auto& [cls, gf] : slow.gflops) gf *= f.severity;
                 dev->reconfigure(slow);
               } else if (w.saved_specs.count(f.name) > 0) {
                 dev->reconfigure(w.saved_specs[f.name]);
                 w.saved_specs.erase(f.name);
               }
             });
      inj.on(sim::FaultKind::kProcessorOffline,
             [fleet_device](const sim::FaultSpec& f, bool begin) {
               hw::ComputeDevice* dev = fleet_device(f.target);
               if (dev != nullptr) dev->set_online(!begin);
             });
      inj.arm(plan);
    }

    // --- flight recorder (DESIGN.md §6i) ---------------------------------
    std::unique_ptr<telemetry::FlightRecorder> flight;
    if (config.flight) {
      flight = std::make_unique<telemetry::FlightRecorder>(
          nshards + 1, config.flight_opts);
      // The manifest context excludes shards/threads: bundle bytes must
      // not depend on execution geometry.
      json::Object cj;
      cj["vehicles"] = static_cast<std::int64_t>(n);
      cj["release_period"] = config.release_period;
      cj["load_until"] = config.load_until;
      cj["run_until"] = config.run_until;
      cj["drain"] = config.drain;
      cj["health"] = config.health;
      cj["remote_tiers"] = config.remote_tiers;
      flight->set_context(config.seed, plan.name, json::Value(std::move(cj)));
      flight->set_manifest_hook([&backend](json::Object& m) {
        m["ingest_anomalies"] =
            static_cast<std::int64_t>(backend.anomalies().size());
        json::Array av;
        for (const std::string& v : backend.anomalous_vehicles()) {
          av.emplace_back(v);
        }
        m["anomalous_vehicles"] = std::move(av);
      });
      ssim.set_flight(flight.get());
      // Every injector replays the same plan with the same jitter streams,
      // so shard 0's injector records activations for everyone — each
      // window edge appears in the black box exactly once regardless of
      // the shard count.
      for (int s = 1; s < nshards; ++s) {
        worlds[static_cast<std::size_t>(s)].inj->set_flight_recording(false);
      }
      if (config.flight_incident_at > 0) {
        ssim.shard(0).at(config.flight_incident_at, [] {
          telemetry::incident("scripted", "fleet");
        });
      }
    }

    // --- continuous profiling plane (DESIGN.md §6j) ----------------------
    // Attached before the first run_until so pool workers register their
    // wait slots on spawn. Slot layout per ShardedSimulator::set_prof:
    // shards, coordinator, then one slot per spawned pool worker.
    std::unique_ptr<telemetry::prof::Profiler> prof;
    if (config.prof) {
      prof = std::make_unique<telemetry::prof::Profiler>(
          static_cast<std::size_t>(nshards) + 1 +
              static_cast<std::size_t>(ssim.threads()),
          config.prof_opts);
      ssim.set_prof(prof.get());
      prof->start();
    }

    // --- load: every vehicle runs the same staggered schedule ------------
    std::map<std::string, FleetVehicleStats> stats;
    for (int i = 0; i < n; ++i) stats[cars[static_cast<std::size_t>(i)]->name()];
    int release_idx = 0;
    for (sim::SimTime t = config.release_period; t <= config.load_until;
         t += config.release_period) {
      const std::string& service =
          config.services[static_cast<std::size_t>(release_idx) %
                          config.services.size()];
      ++release_idx;
      for (int i = 0; i < n; ++i) {
        OpenVdap* car = cars[static_cast<std::size_t>(i)].get();
        fleet::TelemetryShipper* shipper =
            shippers[static_cast<std::size_t>(i)].get();
        FleetVehicleStats* vs = &stats[car->name()];
        // Small per-vehicle stagger so releases do not all tie-break on
        // one clock tick.
        car->simulator().at(t + sim::usec(137) * i,
                            [=, &service_name = service]() {
          ++vs->releases;
          shipper->count("svc." + service_name + ".released");
          car->run_service(
              service_name,
              [=](const edgeos::ServiceRunReport& r) {
                ++vs->reports;
                if (r.ok) ++vs->completed_ok;
                shipper->count("svc." + r.service +
                               (r.ok ? ".ok" : ".fail"));
                shipper->observe("svc." + r.service + ".latency_ms",
                                 sim::to_millis(r.latency()));
              });
        });
      }
    }
    std::vector<sim::Simulator::PeriodicHandle> tickers;
    for (int i = 0; i < n; ++i) {
      OpenVdap* car = cars[static_cast<std::size_t>(i)].get();
      fleet::TelemetryShipper* shipper =
          shippers[static_cast<std::size_t>(i)].get();
      tickers.push_back(car->simulator().every(sim::seconds(7), [car]() {
        car->elastic().reevaluate();
      }));
      tickers.push_back(car->simulator().every(sim::seconds(5),
                                               [car, shipper]() {
        shipper->gauge("elastic.active_runs",
                       static_cast<double>(car->elastic().active_runs()));
      }));
      if (config.location_period > 0) {
        // Deterministic loc.x/loc.y fixes — a pure function of (vehicle
        // index, sim time), no RNG: vehicle i circles at its own radius,
        // phased around the ring, one lap per 8 minutes.
        tickers.push_back(car->simulator().every(config.location_period,
                                                 [car, shipper, i, n]() {
          const double angle =
              2.0 * 3.14159265358979323846 *
              (static_cast<double>(i) / static_cast<double>(n) +
               sim::to_seconds(car->simulator().now()) / 480.0);
          const double radius = 200.0 + 25.0 * static_cast<double>(i);
          shipper->observe("loc.x", radius * std::cos(angle));
          shipper->observe("loc.y", radius * std::sin(angle));
        }));
      }
    }

    // --- run under fire, then heal and drain -----------------------------
    // Direct mutations (heal, flush, stop) happen between run_until calls,
    // i.e. at epoch barriers with every shard quiesced.
    // Quiesced sections record into the coordinator domain (counters sum
    // identically regardless of which domain records them).
    telemetry::Domain* coord =
        domains != nullptr ? domains->coordinator_domain() : nullptr;
    telemetry::FlightRing* coord_ring =
        flight != nullptr ? &flight->ring(nshards) : nullptr;
    telemetry::Domain* prev = nullptr;
    telemetry::FlightRing* prev_ring = nullptr;
    ssim.run_until(config.run_until);
    if (coord != nullptr) prev = telemetry::bind_domain(coord);
    if (coord_ring != nullptr) {
      coord_ring->set_time_hint(ssim.now());
      prev_ring = telemetry::bind_flight(coord_ring);
    }
    for (ShardWorld& w : worlds) w.imp->restore_all();
    for (auto& car : cars) car->elastic().reevaluate();
    if (coord_ring != nullptr) telemetry::bind_flight(prev_ring);
    if (coord != nullptr) telemetry::bind_domain(prev);
    ssim.run_until(config.run_until + sim::seconds(20));
    if (coord != nullptr) prev = telemetry::bind_domain(coord);
    if (coord_ring != nullptr) {
      coord_ring->set_time_hint(ssim.now());
      prev_ring = telemetry::bind_flight(coord_ring);
    }
    for (auto& t : tickers) t.stop();
    for (auto& car : cars) {
      car->elastic().abandon_hung();
      if (HealthController* health = car->health()) health->flush();
    }
    for (auto& shipper : shippers) {
      shipper->stop();
      shipper->flush_now();
    }
    if (coord_ring != nullptr) telemetry::bind_flight(prev_ring);
    if (coord != nullptr) telemetry::bind_domain(prev);
    ssim.run_until(config.run_until + sim::seconds(20) + config.drain);

    // --- snapshot --------------------------------------------------------
    for (int i = 0; i < n; ++i) {
      const fleet::TelemetryShipper& s = *shippers[static_cast<std::size_t>(i)];
      FleetVehicleStats& vs = stats[s.vehicle()];
      vs.frames_enqueued = s.stats().frames_enqueued;
      vs.frames_acked = s.stats().frames_acked;
      vs.frames_dropped = s.stats().frames_dropped;
      vs.send_attempts = s.stats().send_attempts;
      vs.retries = s.stats().retries;
      vs.wire_bytes = s.stats().wire_bytes;
      out.releases += vs.releases;
      out.reports += vs.reports;
      out.completed_ok += vs.completed_ok;
    }
    out.vehicles = std::move(stats);
    out.rollup_table = backend.rollup_table();
    out.anomaly_table = backend.anomaly_table();
    out.vehicle_table = backend.vehicle_table();
    out.anomalies = backend.anomalies();
    out.anomalous_vehicles = backend.anomalous_vehicles();
    out.frames_ingested = backend.frames_ingested();
    out.duplicates = backend.duplicates();
    out.reordered = backend.reordered();
    out.lost_frames = backend.lost_frames();
    out.decode_errors = backend.decode_errors();
    out.samples_ingested = backend.samples_ingested();
    out.detect_passes = backend.detect_passes();
    out.detect_scanned = backend.detect_scanned();
    for (const std::string& q : config.queries) {
      std::string error;
      std::string table = backend.run_query_text(q, &error);
      out.query_results.push_back(table.empty() ? "query error: " + error
                                                : std::move(table));
    }
    out.epochs = ssim.epochs_run();
    // Every shard's injector replays the same plan with the same jitter
    // streams, so shard 0's trace is THE trace.
    out.fault_trace = worlds[0].inj->trace_lines();

    if (domains != nullptr) {
      domains->merge_epoch();  // anything recorded after the last barrier
      out.chrome_trace = domains->chrome_trace();
      const telemetry::MetricsRegistry merged = domains->merged_metrics();
      out.metrics_jsonl =
          telemetry::metrics_snapshot_json(merged, ssim.now()).dump() + "\n";
      out.trace_events = domains->events();
      out.open_spans = domains->open_spans();
      out.metric_keys = merged.counters().all().size() +
                        merged.gauges().size() + merged.histograms().size();
      ssim.set_capture(nullptr);
    }
    if (flight != nullptr) {
      flight->fold_barrier(ssim.now());  // anything after the last barrier
      out.flight_folded = flight->folded_records();
      out.flight_triggers = flight->triggers_seen();
      out.flight_scratch_dropped = flight->scratch_dropped();
      out.flight_rings = flight->serialize_rings();
      out.flight_bundles = flight->bundles();
      ssim.set_flight(nullptr);
    }
    if (prof != nullptr) {
      prof->stop();
      const telemetry::prof::ProfileData pd = prof->collect();
      out.profile_jsonl = telemetry::prof::profile_jsonl(pd);
      out.profile_folded = telemetry::prof::profile_folded(pd);
      out.prof_samples = pd.samples;
      ssim.set_prof(nullptr);
    }
    std::vector<telemetry::ShardRuntimeRow> rows;
    rows.reserve(static_cast<std::size_t>(nshards));
    for (int s = 0; s < nshards; ++s) {
      const sim::ShardedSimulator::ShardRuntime& rt =
          ssim.runtime()[static_cast<std::size_t>(s)];
      const fleet::IngestShard& is = backend.shard(s);
      telemetry::ShardRuntimeRow row;
      row.shard = s;
      row.epochs = ssim.epochs_run();
      row.events = rt.events;
      row.busy_s = rt.busy_s;
      row.wait_s = rt.wait_s;
      row.queue_peak = rt.queue_peak;
      row.wheel_peak = rt.wheel_peak;
      row.overflow_peak = rt.overflow_peak;
      row.frames = is.frames_ingested();
      row.samples = is.samples_ingested();
      row.ring_late = is.ring_late();
      row.decode_errors = is.decode_errors();
      row.backlog_peak = backend.backlog_peak(s);
      row.lag_us_peak = backend.lag_us_peak(s);
      row.pool_hits = is.pool().column_reuses() + is.pool().buffer_reuses();
      row.pool_misses = is.pool().column_allocs() + is.pool().buffer_allocs();
      row.pool_free = is.pool().columns_free() + is.pool().buffers_free();
      if (flight != nullptr) {
        row.flight_records = flight->ring(s).appended();
        row.flight_dropped = flight->ring(s).dropped_total();
      }
      rows.push_back(row);
    }
    out.shards_jsonl = telemetry::shards_report_jsonl(rows);
  }
  for (const fs::path& dir : dirs) fs::remove_all(dir);
  return out;
}

}  // namespace vdap::core
