#include "core/fleet_scale.hpp"

#include <algorithm>
#include <memory>
#include <string_view>
#include <vector>

#include "net/topology.hpp"
#include "sim/sharded.hpp"
#include "telemetry/domains.hpp"
#include "telemetry/export.hpp"
#include "telemetry/fleet/wire.hpp"
#include "telemetry/shard_report.hpp"
#include "util/strings.hpp"

namespace vdap::core {

namespace fleet = telemetry::fleet;

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, std::string_view bytes) {
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= v & 0xFF;
    h *= kFnvPrime;
    v >>= 8;
  }
  return h;
}

}  // namespace

FleetScaleOutcome run_fleet_scale(const FleetScaleConfig& config) {
  const int n = std::max(config.vehicles, 1);
  const int nshards = std::clamp(config.shards, 1, n);
  const int per_tick = std::max(config.samples_per_tick, 1);

  sim::ShardedSimulator ssim(
      config.seed,
      sim::ShardedSimulator::Options{nshards, config.threads, config.epoch});

  std::vector<std::unique_ptr<net::Topology>> topos;
  for (int s = 0; s < nshards; ++s) {
    topos.push_back(std::make_unique<net::Topology>(ssim.shard(s)));
  }

  // Optional hosted ingest backend: one ingest shard per sim shard, fed
  // from the deliver callbacks (each vehicle's frames land on its home
  // shard's thread), MAD detection at every epoch barrier. Leaves the
  // digest path untouched.
  std::unique_ptr<fleet::ShardedIngestBackend> backend;
  if (config.ingest_backend) {
    fleet::IngestOptions iopts = config.ingest;
    iopts.shards = nshards;
    iopts.threads = 1;  // driven by the sim threads
    backend = std::make_unique<fleet::ShardedIngestBackend>(iopts);
    ssim.set_epoch_sink([b = backend.get()](
                            sim::SimTime, std::vector<sim::ShardMessage>&&) {
      b->barrier();
    });
  }

  // Per-shard capture domains: worker shards record into their own domain,
  // merged deterministically at every epoch barrier (DESIGN.md §6h).
  std::unique_ptr<telemetry::DomainSet> domains;
  if (config.capture) {
    domains = std::make_unique<telemetry::DomainSet>(nshards);
    ssim.set_capture(domains.get());
  }

  // Flight recorder (DESIGN.md §6i): one scratch ring per shard plus a
  // coordinator ring, folded canonically at every epoch barrier. The
  // manifest context deliberately excludes shards/threads — bundle bytes
  // must not depend on execution geometry.
  std::unique_ptr<telemetry::FlightRecorder> flight;
  if (config.flight) {
    flight = std::make_unique<telemetry::FlightRecorder>(nshards + 1,
                                                         config.flight_opts);
    json::Object cj;
    cj["vehicles"] = static_cast<std::int64_t>(n);
    cj["run_until"] = config.run_until;
    cj["drain"] = config.drain;
    cj["sample_period"] = config.sample_period;
    cj["samples_per_tick"] = static_cast<std::int64_t>(per_tick);
    cj["ingest_backend"] = config.ingest_backend;
    cj["capture"] = config.capture;
    flight->set_context(config.seed, "fleet-scale",
                        json::Value(std::move(cj)));
    if (backend != nullptr) {
      flight->set_manifest_hook([b = backend.get()](json::Object& m) {
        m["ingest_anomalies"] =
            static_cast<std::int64_t>(b->anomalies().size());
      });
    }
    ssim.set_flight(flight.get());
    if (config.flight_incident_at > 0) {
      // Sim-clock trigger on shard 0: the bundle it snapshots is a pure
      // function of (seed, config), identical across the matrix.
      ssim.shard(0).at(config.flight_incident_at, [] {
        telemetry::incident("scripted", "fleet-scale");
      });
    }
    if (config.flight_crash_dump) flight->arm_crash_dump();
  }

  // Continuous profiling plane (DESIGN.md §6j). Attached before the first
  // run_until so pool workers register their wait slots on spawn; slot
  // layout per ShardedSimulator::set_prof (shards, coordinator, workers).
  std::unique_ptr<telemetry::prof::Profiler> prof;
  if (config.prof) {
    prof = std::make_unique<telemetry::prof::Profiler>(
        static_cast<std::size_t>(nshards) + 1 +
            static_cast<std::size_t>(ssim.threads()),
        config.prof_opts);
    ssim.set_prof(prof.get());
    prof->start();
  }

  // All vehicle state lives in one flat vector sized up front, so the
  // deliver callbacks' pointers stay valid and each slot is touched only
  // by its home shard's thread.
  struct VehicleState {
    std::uint64_t digest = kFnvOffset;  // FNV over frames in delivery order
    std::uint64_t frames = 0;
    std::uint64_t samples = 0;
    std::uint64_t decode_errors = 0;
    std::unique_ptr<fleet::TelemetryShipper> shipper;
    sim::Simulator::PeriodicHandle tick;
  };
  std::vector<VehicleState> vehicles(static_cast<std::size_t>(n));

  for (int i = 0; i < n; ++i) {
    const int s = ssim.shard_of(static_cast<std::uint64_t>(i));
    sim::Simulator& shard_sim = ssim.shard(s);
    VehicleState* v = &vehicles[static_cast<std::size_t>(i)];
    // Shard-local aggregation: decode + digest on the delivering shard's
    // thread, no cross-shard traffic in the hot loop.
    fleet::ShardedIngestBackend* ingest = backend.get();
    v->shipper = std::make_unique<fleet::TelemetryShipper>(
        shard_sim, util::format("cav-%d", i), *topos[static_cast<std::size_t>(s)],
        [v, ingest, s](const std::string& bytes) {
          PROF_SCOPE("fleet/deliver");
          v->digest = fnv_bytes(v->digest, bytes);
          ++v->frames;
          if (ingest != nullptr) ingest->ingest_on_shard(s, bytes);
          if (std::optional<fleet::WireFrame> frame =
                  fleet::wire_decode(bytes)) {
            for (const auto& [metric, samples] : frame->samples) {
              v->samples += samples.size();
            }
          } else {
            ++v->decode_errors;
          }
        },
        config.shipper);
    v->shipper->start();

    // Per-vehicle stream name ⇒ the draw sequence depends only on
    // (seed, i), never on which shard hosts the vehicle.
    util::RngStream* rng = &shard_sim.rng(util::format("scale.load/%d", i));
    fleet::TelemetryShipper* shipper = v->shipper.get();
    const sim::SimDuration phase =
        sim::usec(137) * (i % 97);  // de-synchronize tick timestamps
    v->tick = shard_sim.every(
        config.sample_period,
        [rng, shipper, per_tick]() {
          for (int k = 0; k < per_tick; ++k) {
            shipper->observe("svc.latency_ms",
                             rng->normal_min(25.0, 8.0, 0.1));
          }
          shipper->count("svc.samples", per_tick);
        },
        phase);
  }

  if (config.prepare) config.prepare(ssim);

  FleetScaleOutcome out;
  out.vehicles = n;
  out.shards = nshards;
  out.threads = ssim.threads();

  out.events_fired += ssim.run_until(config.run_until);
  // Quiesced at an epoch barrier: stop the producers, cut the final
  // frames, then drain the transport. Metrics this section records (flush
  // counters) go to the coordinator domain; counters sum identically no
  // matter which domain records them, so geometry invariance holds. The
  // coordinator flight ring binds the same way, stamped with barrier time.
  telemetry::Domain* prev = nullptr;
  telemetry::FlightRing* prev_ring = nullptr;
  if (domains != nullptr) {
    prev = telemetry::bind_domain(domains->coordinator_domain());
  }
  if (flight != nullptr) {
    telemetry::FlightRing& coord = flight->ring(nshards);
    coord.set_time_hint(ssim.now());
    prev_ring = telemetry::bind_flight(&coord);
  }
  for (VehicleState& v : vehicles) {
    v.tick.stop();
    v.shipper->stop();
    v.shipper->flush_now();
  }
  if (flight != nullptr) telemetry::bind_flight(prev_ring);
  if (domains != nullptr) telemetry::bind_domain(prev);
  out.events_fired += ssim.run_until(config.run_until + config.drain);
  out.epochs = ssim.epochs_run();

  std::uint64_t digest = kFnvOffset;
  for (int i = 0; i < n; ++i) {
    const VehicleState& v = vehicles[static_cast<std::size_t>(i)];
    const fleet::TelemetryShipper::Stats& st = v.shipper->stats();
    out.frames_delivered += v.frames;
    out.samples_delivered += v.samples;
    out.decode_errors += v.decode_errors;
    out.frames_enqueued += st.frames_enqueued;
    out.frames_dropped += st.frames_dropped;
    out.wire_bytes += st.wire_bytes;
    digest = fnv_u64(digest, static_cast<std::uint64_t>(i));
    digest = fnv_u64(digest, v.digest);
  }
  out.digest = digest;
  if (backend != nullptr) {
    out.frames_ingested = backend->frames_ingested();
    out.samples_ingested = backend->samples_ingested();
    out.ingest_anomalies = backend->anomalies().size();
    out.detect_passes = backend->detect_passes();
    out.detect_scanned = backend->detect_scanned();
    out.ingest_summary = util::format(
        "fleet-scale ingest frames=%llu samples=%llu anomalies=%llu "
        "detect_passes=%llu detect_scanned=%llu",
        static_cast<unsigned long long>(out.frames_ingested),
        static_cast<unsigned long long>(out.samples_ingested),
        static_cast<unsigned long long>(out.ingest_anomalies),
        static_cast<unsigned long long>(out.detect_passes),
        static_cast<unsigned long long>(out.detect_scanned));
  }
  out.summary = util::format(
      "fleet-scale vehicles=%d frames=%llu samples=%llu bytes=%llu "
      "dropped=%llu decode_errors=%llu digest=%016llx",
      n, static_cast<unsigned long long>(out.frames_delivered),
      static_cast<unsigned long long>(out.samples_delivered),
      static_cast<unsigned long long>(out.wire_bytes),
      static_cast<unsigned long long>(out.frames_dropped),
      static_cast<unsigned long long>(out.decode_errors),
      static_cast<unsigned long long>(out.digest));

  // Capture plane: merged exports, byte-identical across the matrix.
  if (domains != nullptr) {
    domains->merge_epoch();  // anything recorded after the last barrier
    out.chrome_trace = domains->chrome_trace();
    const telemetry::MetricsRegistry merged = domains->merged_metrics();
    out.metrics_jsonl =
        telemetry::metrics_snapshot_json(merged, ssim.now()).dump() + "\n";
    out.trace_events = domains->events();
    out.open_spans = domains->open_spans();
    out.metric_keys = merged.counters().all().size() + merged.gauges().size() +
                      merged.histograms().size();
    ssim.set_capture(nullptr);
  }

  // Flight plane: end-of-run master serialization plus any bundles the
  // run's triggers snapshotted. A final fold picks up anything recorded
  // after the last barrier.
  if (flight != nullptr) {
    flight->fold_barrier(ssim.now());
    out.flight_folded = flight->folded_records();
    out.flight_triggers = flight->triggers_seen();
    out.flight_scratch_dropped = flight->scratch_dropped();
    out.flight_rings = flight->serialize_rings();
    out.flight_bundles = flight->bundles();
    ssim.set_flight(nullptr);
  }
  if (prof != nullptr) {
    prof->stop();
    const telemetry::prof::ProfileData pd = prof->collect();
    out.profile_jsonl = telemetry::prof::profile_jsonl(pd);
    out.profile_folded = telemetry::prof::profile_folded(pd);
    out.prof_samples = pd.samples;
    ssim.set_prof(nullptr);
  }

  // Runtime plane: one report row per shard (wall-clock — diagnostic only).
  std::vector<telemetry::ShardRuntimeRow> rows;
  rows.reserve(static_cast<std::size_t>(nshards));
  for (int s = 0; s < nshards; ++s) {
    const sim::ShardedSimulator::ShardRuntime& rt =
        ssim.runtime()[static_cast<std::size_t>(s)];
    telemetry::ShardRuntimeRow row;
    row.shard = s;
    row.epochs = ssim.epochs_run();
    row.events = rt.events;
    row.busy_s = rt.busy_s;
    row.wait_s = rt.wait_s;
    row.queue_peak = rt.queue_peak;
    row.wheel_peak = rt.wheel_peak;
    row.overflow_peak = rt.overflow_peak;
    if (backend != nullptr) {
      const fleet::IngestShard& is = backend->shard(s);
      row.frames = is.frames_ingested();
      row.samples = is.samples_ingested();
      row.ring_late = is.ring_late();
      row.decode_errors = is.decode_errors();
      row.backlog_peak = backend->backlog_peak(s);
      row.lag_us_peak = backend->lag_us_peak(s);
      row.pool_hits = is.pool().column_reuses() + is.pool().buffer_reuses();
      row.pool_misses = is.pool().column_allocs() + is.pool().buffer_allocs();
      row.pool_free = is.pool().columns_free() + is.pool().buffers_free();
    }
    if (flight != nullptr) {
      row.flight_records = flight->ring(s).appended();
      row.flight_dropped = flight->ring(s).dropped_total();
    }
    rows.push_back(row);
  }
  out.shards_jsonl = telemetry::shards_report_jsonl(rows);
  return out;
}

}  // namespace vdap::core
