#include "ddi/diskdb.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <stdexcept>

#include "util/strings.hpp"

namespace vdap::ddi {

namespace fs = std::filesystem;

DiskDb::DiskDb(DiskDbOptions options) : options_(std::move(options)) {
  if (options_.dir.empty()) throw std::invalid_argument("diskdb needs a dir");
  fs::create_directories(options_.dir);
  recover();
}

DiskDb::~DiskDb() {
  if (active_.is_open()) active_.flush();
}

std::string DiskDb::segment_path(int id) const {
  return options_.dir + "/" + util::format("seg-%06d.log", id);
}

void DiskDb::recover() {
  // Discover existing segments.
  for (const auto& entry : fs::directory_iterator(options_.dir)) {
    std::string name = entry.path().filename().string();
    int id = 0;
    if (std::sscanf(name.c_str(), "seg-%06d.log", &id) == 1) {
      segments_.push_back(id);
    }
  }
  std::sort(segments_.begin(), segments_.end());

  // Rebuild the index by scanning every segment.
  for (int id : segments_) {
    std::ifstream in(segment_path(id), std::ios::binary);
    std::vector<std::uint8_t> buf(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    std::size_t offset = 0;
    while (offset < buf.size()) {
      std::size_t rec_offset = offset;
      auto rec = decode(buf, offset);
      if (!rec) break;  // trailing torn write: ignore (crash recovery)
      index_record(*rec, id, rec_offset);
      ++record_count_;
    }
    bytes_written_ += offset;
    segment_bytes_[id] += offset;
  }

  int next = segments_.empty() ? 1 : segments_.back();
  std::uint64_t existing =
      segments_.empty() ? 0
                        : static_cast<std::uint64_t>(
                              fs::file_size(segment_path(next)));
  if (segments_.empty() || existing >= options_.segment_bytes) {
    next = segments_.empty() ? 1 : segments_.back() + 1;
    existing = 0;
    segments_.push_back(next);
  }
  open_segment(next, existing);
}

void DiskDb::open_segment(int id, std::uint64_t existing_bytes) {
  if (active_.is_open()) active_.close();
  active_.open(segment_path(id), std::ios::binary | std::ios::app);
  if (!active_) {
    throw std::runtime_error("cannot open segment " + segment_path(id));
  }
  active_id_ = id;
  active_bytes_ = existing_bytes;
}

void DiskDb::index_record(const DataRecord& rec, int segment,
                          std::uint64_t offset) {
  index_[rec.stream].push_back(IndexEntry{rec.timestamp, segment, offset});
  sorted_[rec.stream] = false;
  auto it = segment_max_ts_.find(segment);
  if (it == segment_max_ts_.end() || rec.timestamp > it->second) {
    segment_max_ts_[segment] = rec.timestamp;
  }
}

void DiskDb::put(const DataRecord& rec) {
  if (rec.stream.empty()) throw std::invalid_argument("record needs a stream");
  if (write_fault_) {
    // Fail before any mutation so a retried put after the fault clears
    // stores exactly one copy.
    ++failed_puts_;
    throw DiskWriteError("injected disk write fault");
  }
  if (active_bytes_ >= options_.segment_bytes) {
    int next = segments_.back() + 1;
    segments_.push_back(next);
    open_segment(next, 0);
  }
  std::vector<std::uint8_t> buf;
  encode(rec, buf);
  index_record(rec, active_id_, active_bytes_);
  active_.write(reinterpret_cast<const char*>(buf.data()),
                static_cast<std::streamsize>(buf.size()));
  active_bytes_ += buf.size();
  bytes_written_ += buf.size();
  segment_bytes_[active_id_] += buf.size();
  ++record_count_;
}

void DiskDb::flush() {
  if (active_.is_open()) active_.flush();
}

void DiskDb::ensure_sorted(const std::string& stream) const {
  auto it = sorted_.find(stream);
  if (it != sorted_.end() && it->second) return;
  auto& v = index_[stream];
  std::stable_sort(v.begin(), v.end(),
                   [](const IndexEntry& a, const IndexEntry& b) {
                     return a.ts < b.ts;
                   });
  sorted_[stream] = true;
}

DataRecord DiskDb::read_at(int segment, std::uint64_t offset) const {
  std::ifstream in(segment_path(segment), std::ios::binary);
  in.seekg(static_cast<std::streamoff>(offset));
  std::uint8_t len_bytes[4];
  in.read(reinterpret_cast<char*>(len_bytes), 4);
  std::uint32_t len = 0;
  std::memcpy(&len, len_bytes, 4);
  std::vector<std::uint8_t> buf(4 + len);
  std::memcpy(buf.data(), len_bytes, 4);
  in.read(reinterpret_cast<char*>(buf.data() + 4), len);
  std::size_t pos = 0;
  auto rec = decode(buf, pos);
  if (!rec) {
    throw std::runtime_error(
        util::format("corrupt record at seg %d offset %llu", segment,
                     static_cast<unsigned long long>(offset)));
  }
  return *rec;
}

std::vector<DataRecord> DiskDb::query(const std::string& stream,
                                      sim::SimTime t0, sim::SimTime t1) const {
  // Make sure everything we might read has reached the file.
  const_cast<DiskDb*>(this)->flush();
  std::vector<DataRecord> out;
  auto it = index_.find(stream);
  if (it == index_.end()) return out;
  ensure_sorted(stream);
  const auto& v = it->second;
  auto lo = std::lower_bound(v.begin(), v.end(), t0,
                             [](const IndexEntry& e, sim::SimTime t) {
                               return e.ts < t;
                             });
  for (auto e = lo; e != v.end() && e->ts <= t1; ++e) {
    out.push_back(read_at(e->segment, e->offset));
  }
  return out;
}

std::vector<DataRecord> DiskDb::query_geo(const std::string& stream,
                                          sim::SimTime t0, sim::SimTime t1,
                                          double lat0, double lat1,
                                          double lon0, double lon1) const {
  std::vector<DataRecord> all = query(stream, t0, t1);
  std::vector<DataRecord> out;
  for (DataRecord& r : all) {
    if (r.lat >= lat0 && r.lat <= lat1 && r.lon >= lon0 && r.lon <= lon1) {
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::uint64_t DiskDb::bytes_on_disk() const {
  std::uint64_t total = 0;
  for (const auto& [id, bytes] : segment_bytes_) total += bytes;
  return total;
}

void DiskDb::retire_segment(int id) {
  std::uint64_t dropped = 0;
  for (auto& [stream, entries] : index_) {
    auto keep = entries.begin();
    for (auto it = entries.begin(); it != entries.end(); ++it) {
      if (it->segment == id) {
        ++dropped;
      } else {
        if (keep != it) *keep = *it;
        ++keep;
      }
    }
    entries.erase(keep, entries.end());
  }
  record_count_ -= dropped;
  segment_bytes_.erase(id);
  segment_max_ts_.erase(id);
  segments_.erase(std::find(segments_.begin(), segments_.end(), id));
  std::error_code ec;
  fs::remove(segment_path(id), ec);  // best effort
}

std::uint64_t DiskDb::enforce_retention(std::uint64_t max_bytes,
                                        sim::SimTime min_timestamp) {
  std::uint64_t before = record_count_;
  // Oldest-first (segment ids are monotone in creation order); never touch
  // the active segment.
  while (segments_.size() > 1) {
    int oldest = segments_.front();
    bool over_budget = max_bytes > 0 && bytes_on_disk() > max_bytes;
    auto ts = segment_max_ts_.find(oldest);
    bool aged_out = min_timestamp > sim::kTimeZero &&
                    (ts == segment_max_ts_.end() ||
                     ts->second < min_timestamp);
    if (!over_budget && !aged_out) break;
    retire_segment(oldest);
  }
  return before - record_count_;
}

std::vector<std::string> DiskDb::streams() const {
  std::vector<std::string> out;
  for (const auto& [name, entries] : index_) {
    if (!entries.empty()) out.push_back(name);
  }
  return out;
}

}  // namespace vdap::ddi
