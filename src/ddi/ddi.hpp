// DDI service layer (§IV-D): the three-layer Driving Data Integrator.
//
//   collectors  →  [ staging buffer → DiskDb ]  ←  service layer (API)
//                          ↑↓ MemDb result cache
//
// Semantics follow the paper:
//   * uploads land in memory first; "when the survival time is up and the
//     related charts have been created in disk database, the data in
//     in-memory database would be written to disk" — a periodic write-back
//     flush persists staged records older than their survival time;
//   * "all the request for the data would search the in-memory database
//     first, when it can't be found ... it would go to the disk database" —
//     downloads hit the MemDb result cache first, then merge disk +
//     still-staged records, caching the result;
//   * download keywords are location and timestamp (time range + optional
//     geo box).
// Access latency is simulated: a cache hit answers in memory-access time, a
// miss pays the disk path.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "ddi/collectors.hpp"
#include "ddi/diskdb.hpp"
#include "ddi/memdb.hpp"
#include "sim/simulator.hpp"

namespace vdap::ddi {

struct DdiOptions {
  MemDbOptions mem;
  DiskDbOptions disk;
  /// Write-back flush period for staged records.
  sim::SimDuration flush_period = sim::seconds(5);
  /// Survival time of staged records before they move to disk.
  sim::SimDuration staging_ttl = sim::seconds(10);
  /// Disk retention, enforced at every flush (0 = unbounded). Answers the
  /// paper's open question of "how long will these data need to be stored"
  /// with an explicit policy: a byte budget and a maximum age.
  std::uint64_t retention_max_bytes = 0;
  sim::SimDuration retention_max_age = 0;
  /// Simulated service latencies.
  sim::SimDuration mem_latency = sim::usec(100);
  sim::SimDuration disk_latency = sim::msec(2);
};

struct DownloadRequest {
  std::string stream;
  sim::SimTime t0 = 0;
  sim::SimTime t1 = 0;
  /// Optional geo filter (applied when geo == true).
  bool geo = false;
  double lat0 = 0, lat1 = 0, lon0 = 0, lon1 = 0;
};

struct DownloadResponse {
  std::vector<DataRecord> records;
  bool from_cache = false;
  sim::SimDuration latency = 0;
};

class Ddi {
 public:
  Ddi(sim::Simulator& sim, DdiOptions options);

  /// Upload path (collectors and services): stages the record in memory;
  /// the write-back flush persists it. Synchronous (called from feeds).
  void upload(DataRecord rec);

  /// Download path: async; the callback fires after the simulated memory-
  /// or disk-path latency.
  void download(const DownloadRequest& req,
                std::function<void(const DownloadResponse&)> done);

  /// Immediate synchronous query (tests / in-process consumers); still
  /// records cache-hit statistics.
  DownloadResponse download_now(const DownloadRequest& req);

  /// Forces the write-back flush (normally periodic).
  void flush_staged(bool force_all = false);

  MemDb& cache() { return cache_; }
  DiskDb& disk() { return *disk_; }

  std::uint64_t uploads() const { return uploads_; }
  std::uint64_t downloads() const { return downloads_; }
  std::uint64_t staged_count() const;
  /// Put attempts the staging flush absorbed because the disk was faulted
  /// (records stayed staged and were retried; none were dropped).
  std::uint64_t disk_write_failures() const { return disk_write_failures_; }

 private:
  static std::string cache_key(const DownloadRequest& req);
  std::vector<DataRecord> collect(const DownloadRequest& req);

  sim::Simulator& sim_;
  DdiOptions options_;
  MemDb cache_;
  std::unique_ptr<DiskDb> disk_;
  // Staging buffer: records awaiting their survival time before moving to
  // disk (kept in arrival order per stream; scanned for queries).
  struct Staged {
    sim::SimTime staged_at;
    DataRecord rec;
  };
  std::map<std::string, std::vector<Staged>> staged_;
  std::uint64_t uploads_ = 0;
  std::uint64_t downloads_ = 0;
  std::uint64_t disk_write_failures_ = 0;
};

}  // namespace vdap::ddi
