// Disk database (§IV-D): "As the data from the collector layer is
// time-space related, disk database is utilized to store it ... Collected
// data are permanently stored in the disk database."
//
// A real file-backed store: fixed-size append-only segment files of encoded
// DataRecords under one directory, with an in-memory index (per stream,
// timestamp → segment/offset) rebuilt by scanning the segments on open —
// so a vehicle reboot (reopening the directory) recovers everything.
#pragma once

#include <cstdint>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

#include "ddi/record.hpp"

namespace vdap::ddi {

/// Thrown by DiskDb::put while a write fault is injected (bad sector, full
/// disk). The record is NOT stored; callers may retry after the fault ends.
class DiskWriteError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

struct DiskDbOptions {
  std::string dir;                          // storage directory (created)
  std::uint64_t segment_bytes = 4ull << 20; // roll segments at this size
};

class DiskDb {
 public:
  /// Opens (and recovers) the database at options.dir.
  explicit DiskDb(DiskDbOptions options);
  ~DiskDb();

  DiskDb(const DiskDb&) = delete;
  DiskDb& operator=(const DiskDb&) = delete;

  /// Appends a record (write-through to the active segment file). Throws
  /// DiskWriteError — before mutating any state — while a write fault is
  /// injected.
  void put(const DataRecord& rec);

  /// Fault injection: while set, every put() throws DiskWriteError.
  void set_write_fault(bool faulted) { write_fault_ = faulted; }
  bool write_fault() const { return write_fault_; }
  std::uint64_t failed_puts() const { return failed_puts_; }

  /// Forces buffered bytes to the OS.
  void flush();

  /// All records of `stream` with timestamp in [t0, t1], in time order.
  std::vector<DataRecord> query(const std::string& stream, sim::SimTime t0,
                                sim::SimTime t1) const;

  /// As query(), additionally filtered to the lat/lon bounding box.
  std::vector<DataRecord> query_geo(const std::string& stream,
                                    sim::SimTime t0, sim::SimTime t1,
                                    double lat0, double lat1, double lon0,
                                    double lon1) const;

  std::vector<std::string> streams() const;
  std::uint64_t record_count() const { return record_count_; }
  std::uint64_t bytes_written() const { return bytes_written_; }
  int segment_count() const { return static_cast<int>(segments_.size()); }
  /// Bytes currently on disk (bytes_written minus retired segments).
  std::uint64_t bytes_on_disk() const;

  /// Retention (the paper's §IV-D open problem — "how long will these data
  /// need to be stored is still unclear" — made a policy): retires whole
  /// segments, oldest first, until the store fits `max_bytes` (0 = no byte
  /// bound) and no retained record is older than `min_timestamp`
  /// (kTimeZero = no age bound). The active segment is never retired.
  /// Returns the number of records dropped. Deletion is segment-granular:
  /// a segment is age-retired only when *all* its records are older than
  /// the cutoff.
  std::uint64_t enforce_retention(std::uint64_t max_bytes,
                                  sim::SimTime min_timestamp = sim::kTimeZero);

 private:
  struct IndexEntry {
    sim::SimTime ts;
    int segment;
    std::uint64_t offset;
  };

  std::string segment_path(int id) const;
  void open_segment(int id, std::uint64_t existing_bytes);
  void recover();
  void index_record(const DataRecord& rec, int segment,
                    std::uint64_t offset);
  DataRecord read_at(int segment, std::uint64_t offset) const;
  void ensure_sorted(const std::string& stream) const;

  void retire_segment(int id);

  DiskDbOptions options_;
  std::vector<int> segments_;      // segment ids, ascending
  std::ofstream active_;
  int active_id_ = 0;
  std::uint64_t active_bytes_ = 0;
  // Per-segment stats for retention decisions.
  std::map<int, std::uint64_t> segment_bytes_;
  std::map<int, sim::SimTime> segment_max_ts_;

  mutable std::map<std::string, std::vector<IndexEntry>> index_;
  mutable std::map<std::string, bool> sorted_;
  std::uint64_t record_count_ = 0;
  std::uint64_t bytes_written_ = 0;
  bool write_fault_ = false;
  std::uint64_t failed_puts_ = 0;
};

}  // namespace vdap::ddi
