#include "ddi/cloudsync.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace vdap::ddi {

CloudSync::CloudSync(sim::Simulator& sim, Ddi& ddi, net::Topology& topo,
                     CloudSyncOptions options)
    : sim_(sim), ddi_(ddi), topo_(topo), options_(options) {}

void CloudSync::start() {
  stopped_ = false;
  if (handle_ && handle_->active()) return;
  handle_ = sim_.every(options_.check_period, [this]() { sync_once(); },
                       options_.check_period);
}

void CloudSync::stop() {
  stopped_ = true;
  if (handle_) handle_->stop();
}

std::uint64_t CloudSync::backlog() const {
  std::uint64_t n = 0;
  for (const std::string& stream : ddi_.disk().streams()) {
    auto it = cursor_.find(stream);
    sim::SimTime from = it != cursor_.end() ? it->second + 1 : 0;
    n += ddi_.disk().query(stream, from, sim::kTimeMax).size();
  }
  return n;
}

bool CloudSync::gate_closed() const {
  return !topo_.available(options_.tier) ||
         topo_.cellular_bandwidth_factor() < options_.min_bandwidth_factor;
}

std::size_t CloudSync::sync_once() {
  if (gate_closed()) {
    ++skipped_;
    telemetry::count("sync.skipped");
    return 0;
  }
  std::size_t shipped = 0;
  for (const std::string& stream : ddi_.disk().streams()) {
    shipped += sync_stream(stream);
  }
  return shipped;
}

std::size_t CloudSync::sync_stream(const std::string& stream) {
  if (in_flight_.count(stream) > 0) return 0;  // batch still uploading
  sim::SimTime from = cursor_.count(stream) > 0 ? cursor_[stream] + 1 : 0;
  std::vector<DataRecord> pending =
      ddi_.disk().query(stream, from, sim::kTimeMax);
  if (pending.empty()) return 0;
  if (pending.size() > options_.batch_records) {
    pending.resize(options_.batch_records);
  }
  std::uint64_t bytes = 0;
  for (const DataRecord& r : pending) bytes += encoded_size(r);

  // Ship the batch; advance the cursor only on delivery — the never-lose-
  // records invariant: a failed or half-delivered batch leaves the cursor
  // where it was, so every record is re-shipped until the cloud confirms.
  sim::SimTime new_cursor = pending.back().timestamp;
  auto batch = std::make_shared<std::vector<DataRecord>>(std::move(pending));
  std::string stream_name = stream;
  in_flight_.insert(stream_name);
  std::uint64_t span = 0;
  if (telemetry::on()) {
    json::Object args;
    args["records"] = static_cast<std::int64_t>(batch->size());
    args["bytes"] = static_cast<std::int64_t>(bytes);
    span = telemetry::tracer().begin(sim_.now(), "ddi", "sync:" + stream_name,
                                     "cloudsync", std::move(args));
  }
  topo_.transfer_up(
      options_.tier, bytes,
      [this, batch, bytes, stream_name, new_cursor,
       span](const net::TransferOutcome& out) {
        in_flight_.erase(stream_name);
        if (telemetry::on()) {
          json::Object args;
          args["delivered"] = out.delivered;
          telemetry::tracer().end(sim_.now(), span, std::move(args));
        }
        if (!out.delivered) {
          ++failed_;
          telemetry::count("sync.failed");
          schedule_retry(stream_name);
          return;  // cursor untouched
        }
        consecutive_failures_.erase(stream_name);
        cursor_[stream_name] = new_cursor;
        records_synced_ += batch->size();
        bytes_synced_ += bytes;
        telemetry::count("sync.batches");
        telemetry::count("sync.records",
                         static_cast<std::int64_t>(batch->size()));
        telemetry::count("sync.bytes", static_cast<std::int64_t>(bytes));
        if (sink_) {
          for (const DataRecord& r : *batch) sink_(r);
        }
      });
  return batch->size();
}

void CloudSync::schedule_retry(const std::string& stream) {
  if (options_.retry_backoff <= 0 || stopped_) return;
  int k = ++consecutive_failures_[stream];
  sim::SimDuration delay = options_.retry_backoff;
  for (int i = 1; i < k && delay < options_.retry_backoff_max; ++i) {
    delay *= 2;
  }
  delay = std::min(delay, options_.retry_backoff_max);
  if (telemetry::on()) {
    json::Object args;
    args["stream"] = stream;
    args["attempt"] = k;
    args["delay_ms"] = sim::to_millis(delay);
    telemetry::tracer().instant(sim_.now(), "ddi", "sync.backoff", "cloudsync",
                                std::move(args));
  }
  sim_.after(delay, [this, stream]() {
    if (stopped_) return;
    // If conditions are still hostile, let the periodic wake-up retry
    // instead of spinning against a closed gate.
    if (gate_closed()) return;
    ++retries_;
    telemetry::count("sync.retries");
    sync_stream(stream);
  });
}

}  // namespace vdap::ddi
