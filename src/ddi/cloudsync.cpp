#include "ddi/cloudsync.hpp"

namespace vdap::ddi {

CloudSync::CloudSync(sim::Simulator& sim, Ddi& ddi, net::Topology& topo,
                     CloudSyncOptions options)
    : sim_(sim), ddi_(ddi), topo_(topo), options_(options) {}

void CloudSync::start() {
  if (handle_ && handle_->active()) return;
  handle_ = sim_.every(options_.check_period, [this]() { sync_once(); },
                       options_.check_period);
}

void CloudSync::stop() {
  if (handle_) handle_->stop();
}

std::uint64_t CloudSync::backlog() const {
  std::uint64_t n = 0;
  for (const std::string& stream : ddi_.disk().streams()) {
    auto it = cursor_.find(stream);
    sim::SimTime from = it != cursor_.end() ? it->second + 1 : 0;
    n += ddi_.disk().query(stream, from, sim::kTimeMax).size();
  }
  return n;
}

std::size_t CloudSync::sync_once() {
  if (!topo_.available(options_.tier) ||
      topo_.cellular_bandwidth_factor() < options_.min_bandwidth_factor) {
    ++skipped_;
    return 0;
  }
  std::size_t shipped = 0;
  for (const std::string& stream : ddi_.disk().streams()) {
    if (in_flight_.count(stream) > 0) continue;  // batch still uploading
    sim::SimTime from =
        cursor_.count(stream) > 0 ? cursor_[stream] + 1 : 0;
    std::vector<DataRecord> pending =
        ddi_.disk().query(stream, from, sim::kTimeMax);
    if (pending.empty()) continue;
    if (pending.size() > options_.batch_records) {
      pending.resize(options_.batch_records);
    }
    std::uint64_t bytes = 0;
    for (const DataRecord& r : pending) bytes += encoded_size(r);

    // Ship the batch; advance the cursor only on delivery.
    sim::SimTime new_cursor = pending.back().timestamp;
    auto batch = std::make_shared<std::vector<DataRecord>>(std::move(pending));
    std::string stream_name = stream;
    in_flight_.insert(stream_name);
    topo_.transfer_up(
        options_.tier, bytes,
        [this, batch, bytes, stream_name,
         new_cursor](const net::TransferOutcome& out) {
          in_flight_.erase(stream_name);
          if (!out.delivered) {
            ++failed_;
            return;  // cursor untouched; retried next wake-up
          }
          cursor_[stream_name] = new_cursor;
          records_synced_ += batch->size();
          bytes_synced_ += bytes;
          if (sink_) {
            for (const DataRecord& r : *batch) sink_(r);
          }
        });
    shipped += batch->size();
  }
  return shipped;
}

}  // namespace vdap::ddi
