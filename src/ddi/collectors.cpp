#include "ddi/collectors.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/telemetry.hpp"

namespace vdap::ddi {

namespace {
constexpr double kMetersPerDegLat = 111'320.0;
}

ObdCollector::ObdCollector(sim::Simulator& sim, RecordSink sink,
                           sim::SimDuration period)
    : sim_(sim), sink_(std::move(sink)), period_(period) {}

void ObdCollector::start() {
  if (handle_ && handle_->active()) return;
  handle_ = sim_.every(period_, [this]() { tick(); });
}

void ObdCollector::stop() {
  if (handle_) handle_->stop();
}

void ObdCollector::tick() {
  util::RngStream& rng = sim_.rng("ddi.obd");
  double dt = sim::to_seconds(period_);

  // Occasionally pick a new cruise target (traffic lights, speed zones).
  if (rng.chance(0.01)) state_.target_mps = rng.uniform(0.0, 31.0);
  // First-order speed tracking with jitter.
  double accel =
      std::clamp((state_.target_mps - state_.speed_mps) * 0.4, -3.0, 2.5) +
      rng.normal(0.0, 0.2);
  state_.speed_mps = std::max(0.0, state_.speed_mps + accel * dt);
  // Gentle heading wander; dead-reckon position.
  state_.heading_rad += rng.normal(0.0, 0.02);
  double dist = state_.speed_mps * dt;
  state_.odometer_m += dist;
  state_.lat += dist * std::cos(state_.heading_rad) / kMetersPerDegLat;
  state_.lon += dist * std::sin(state_.heading_rad) /
                (kMetersPerDegLat * std::cos(state_.lat * M_PI / 180.0));
  // Slow thermal/electrical dynamics.
  double load = std::abs(accel) + state_.speed_mps / 31.0;
  state_.coolant_c +=
      (82.0 + 8.0 * load - state_.coolant_c) * 0.01 + rng.normal(0.0, 0.05);
  state_.battery_v = 13.8 + rng.normal(0.0, 0.05) - 0.3 * (load > 1.5);
  if (rng.chance(0.0005)) state_.tire_psi -= rng.uniform(0.05, 0.3);  // leak

  double rpm = 800.0 + state_.speed_mps * 90.0 + std::max(0.0, accel) * 400.0;

  DataRecord rec;
  rec.stream = "vehicle/obd";
  rec.timestamp = sim_.now();
  rec.lat = state_.lat;
  rec.lon = state_.lon;
  rec.payload["speed_mps"] = state_.speed_mps;
  rec.payload["accel_mps2"] = accel;
  rec.payload["rpm"] = rpm;
  rec.payload["coolant_c"] = state_.coolant_c;
  rec.payload["tire_psi"] = state_.tire_psi;
  rec.payload["battery_v"] = state_.battery_v;
  rec.payload["odometer_m"] = state_.odometer_m;
  rec.payload["heading_rad"] = state_.heading_rad;
  ++emitted_;
  telemetry::count("ddi.collected", {{"stream", "vehicle/obd"}});
  sink_(std::move(rec));
}

WeatherFeed::WeatherFeed(sim::Simulator& sim, RecordSink sink,
                         sim::SimDuration period)
    : sim_(sim), sink_(std::move(sink)), period_(period) {}

void WeatherFeed::start() {
  if (handle_ && handle_->active()) return;
  handle_ = sim_.every(period_, [this]() { tick(); });
}

void WeatherFeed::stop() {
  if (handle_) handle_->stop();
}

void WeatherFeed::tick() {
  util::RngStream& rng = sim_.rng("ddi.weather");
  // Markov transitions: mostly sticky, rain more likely than snow.
  double u = rng.uniform();
  if (condition_ == "clear") {
    if (u < 0.06) condition_ = "rain";
    else if (u < 0.08) condition_ = "snow";
  } else if (condition_ == "rain") {
    if (u < 0.15) condition_ = "clear";
    else if (u < 0.18) condition_ = "snow";
  } else {  // snow
    if (u < 0.12) condition_ = "clear";
    else if (u < 0.20) condition_ = "rain";
  }
  double target = condition_ == "snow" ? -2.0 : condition_ == "rain" ? 12.0
                                                                     : 20.0;
  temperature_c_ += (target - temperature_c_) * 0.05 + rng.normal(0.0, 0.3);

  DataRecord rec;
  rec.stream = "env/weather";
  rec.timestamp = sim_.now();
  rec.payload["condition"] = condition_;
  rec.payload["temperature_c"] = temperature_c_;
  rec.payload["visibility_m"] =
      condition_ == "clear" ? 10000.0 : condition_ == "rain" ? 3000.0 : 800.0;
  ++emitted_;
  telemetry::count("ddi.collected", {{"stream", "env/weather"}});
  sink_(std::move(rec));
}

TrafficFeed::TrafficFeed(sim::Simulator& sim, RecordSink sink,
                         sim::SimDuration period)
    : sim_(sim), sink_(std::move(sink)), period_(period) {}

void TrafficFeed::start() {
  if (handle_ && handle_->active()) return;
  handle_ = sim_.every(period_, [this]() { tick(); });
}

void TrafficFeed::stop() {
  if (handle_) handle_->stop();
}

void TrafficFeed::tick() {
  util::RngStream& rng = sim_.rng("ddi.traffic");
  // Mean-reverting congestion with occasional jams.
  congestion_ += (0.3 - congestion_) * 0.1 + rng.normal(0.0, 0.05);
  if (rng.chance(0.02)) congestion_ += 0.4;  // incident ahead
  congestion_ = std::clamp(congestion_, 0.0, 1.0);

  DataRecord rec;
  rec.stream = "env/traffic";
  rec.timestamp = sim_.now();
  rec.payload["congestion"] = congestion_;
  rec.payload["avg_speed_mps"] = 31.0 * (1.0 - 0.8 * congestion_);
  ++emitted_;
  telemetry::count("ddi.collected", {{"stream", "env/traffic"}});
  sink_(std::move(rec));
}

SocialFeed::SocialFeed(sim::Simulator& sim, RecordSink sink,
                       double events_per_hour)
    : sim_(sim), sink_(std::move(sink)), rate_per_s_(events_per_hour / 3600.0) {}

void SocialFeed::start() {
  stopped_ = false;
  arm();
}

void SocialFeed::stop() { stopped_ = true; }

void SocialFeed::arm() {
  if (rate_per_s_ <= 0.0) return;
  double gap = sim_.rng("ddi.social").exponential(1.0 / rate_per_s_);
  sim_.after(sim::from_seconds(gap), [this]() {
    if (stopped_) return;
    util::RngStream& rng = sim_.rng("ddi.social");
    static const char* kKinds[] = {"accident", "construction", "closure",
                                   "event-traffic", "hazard"};
    DataRecord rec;
    rec.stream = "social/events";
    rec.timestamp = sim_.now();
    rec.lat = 42.3314 + rng.uniform(-0.05, 0.05);
    rec.lon = -83.0458 + rng.uniform(-0.05, 0.05);
    rec.payload["kind"] = kKinds[rng.uniform_int(0, 4)];
    rec.payload["severity"] = rng.uniform_int(1, 5);
    ++emitted_;
    telemetry::count("ddi.collected", {{"stream", "social/events"}});
    sink_(std::move(rec));
    arm();
  });
}

}  // namespace vdap::ddi
