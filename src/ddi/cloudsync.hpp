// Cloud migration of DDI data (§IV-A): "All data collected by the DDI will
// be cached on the vehicle and eventually migrated to a cloud based data
// server. Note that these data will be open to the community."
//
// CloudSync is opportunistic: it wakes periodically, and only when the
// cellular tier is reachable and healthy enough (parked / low speed) does
// it upload the next batch of not-yet-synced records per stream. Uploads
// pay real transfer time on the topology; failures leave the cursor
// untouched so nothing is lost, only delayed.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "ddi/ddi.hpp"
#include "net/topology.hpp"

namespace vdap::ddi {

struct CloudSyncOptions {
  sim::SimDuration check_period = sim::seconds(30);
  /// Upper bound on records shipped per wake-up (per stream).
  std::size_t batch_records = 500;
  /// Minimum cellular bandwidth factor to attempt a sync (don't fight the
  /// Fig. 2 conditions for bulk data).
  double min_bandwidth_factor = 0.5;
  net::Tier tier = net::Tier::kCloud;
  /// First retry delay after a failed upload; doubles per consecutive
  /// failure of the same stream, capped at retry_backoff_max. 0 disables
  /// backoff retries (the periodic wake-up still retries eventually).
  sim::SimDuration retry_backoff = sim::seconds(2);
  sim::SimDuration retry_backoff_max = sim::minutes(2);
};

class CloudSync {
 public:
  using Sink = std::function<void(const DataRecord&)>;

  CloudSync(sim::Simulator& sim, Ddi& ddi, net::Topology& topo,
            CloudSyncOptions options = {});

  /// Receives each record on the cloud side after a successful upload
  /// (e.g. appends to the community data server).
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  void start();
  void stop();

  /// Forces one sync attempt now (regardless of the period; the network
  /// gate still applies). Returns the number of records shipped.
  std::size_t sync_once();

  std::uint64_t records_synced() const { return records_synced_; }
  std::uint64_t bytes_synced() const { return bytes_synced_; }
  std::uint64_t skipped_bad_network() const { return skipped_; }
  std::uint64_t failed_uploads() const { return failed_; }
  std::uint64_t retries() const { return retries_; }

  /// Records persisted on the vehicle but not yet migrated.
  std::uint64_t backlog() const;

 private:
  bool gate_closed() const;
  /// Attempts one batch for one stream; returns records submitted.
  std::size_t sync_stream(const std::string& stream);
  void schedule_retry(const std::string& stream);

  sim::Simulator& sim_;
  Ddi& ddi_;
  net::Topology& topo_;
  CloudSyncOptions options_;
  Sink sink_;
  std::optional<sim::Simulator::PeriodicHandle> handle_;
  bool stopped_ = false;  // silences pending backoff retries after stop()
  // Per-stream cursor: every record with timestamp <= cursor is synced.
  std::map<std::string, sim::SimTime> cursor_;
  // Streams with an upload in flight (guards against duplicate batches).
  std::set<std::string> in_flight_;
  // Consecutive failed uploads per stream, for exponential backoff.
  std::map<std::string, int> consecutive_failures_;
  std::uint64_t records_synced_ = 0;
  std::uint64_t bytes_synced_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t failed_ = 0;
  std::uint64_t retries_ = 0;
};

}  // namespace vdap::ddi
