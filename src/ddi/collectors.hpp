// Collector layer (§IV-D, Fig. 7): "OBD reader and on-board sensors collect
// the driving data, which includes the location, speed, acceleration,
// angular velocity and so on. ... Weather, traffic and social data are
// collected from vehicle-specific APIs."
//
// Each collector is a seeded synthetic feed with realistic dynamics
// (substitute for the physical sensors/APIs we do not have — DESIGN.md §2):
//   * ObdCollector — 10 Hz vehicle state from a little longitudinal
//     dynamics model (speed tracking a varying target, RPM, coolant
//     temperature, tire pressure with slow leaks, battery voltage) plus
//     dead-reckoned position along a heading;
//   * WeatherFeed — Markov weather (clear/rain/snow) with temperature drift;
//   * TrafficFeed — congestion level following a mean-reverting process;
//   * SocialFeed — Poisson stream of geo-tagged events (accident, closure).
#pragma once

#include <functional>
#include <string>

#include "ddi/record.hpp"
#include "sim/simulator.hpp"

namespace vdap::ddi {

using RecordSink = std::function<void(DataRecord)>;

struct VehicleStateModel {
  double speed_mps = 0.0;
  double target_mps = 13.0;
  double heading_rad = 0.0;
  double lat = 42.3314;   // Detroit
  double lon = -83.0458;
  double coolant_c = 70.0;
  double tire_psi = 35.0;
  double battery_v = 13.8;
  double odometer_m = 0.0;
};

class ObdCollector {
 public:
  ObdCollector(sim::Simulator& sim, RecordSink sink,
               sim::SimDuration period = sim::msec(100));

  void start();
  void stop();

  const VehicleStateModel& state() const { return state_; }
  /// Pins the speed target (drive scenarios set this; otherwise the target
  /// wanders between city and highway speeds).
  void set_target_speed(double mps) { state_.target_mps = mps; }

  std::uint64_t emitted() const { return emitted_; }

 private:
  void tick();

  sim::Simulator& sim_;
  RecordSink sink_;
  sim::SimDuration period_;
  VehicleStateModel state_;
  std::optional<sim::Simulator::PeriodicHandle> handle_;
  std::uint64_t emitted_ = 0;
};

class WeatherFeed {
 public:
  WeatherFeed(sim::Simulator& sim, RecordSink sink,
              sim::SimDuration period = sim::seconds(60));
  void start();
  void stop();
  const std::string& condition() const { return condition_; }
  std::uint64_t emitted() const { return emitted_; }

 private:
  void tick();
  sim::Simulator& sim_;
  RecordSink sink_;
  sim::SimDuration period_;
  std::string condition_ = "clear";
  double temperature_c_ = 18.0;
  std::optional<sim::Simulator::PeriodicHandle> handle_;
  std::uint64_t emitted_ = 0;
};

class TrafficFeed {
 public:
  TrafficFeed(sim::Simulator& sim, RecordSink sink,
              sim::SimDuration period = sim::seconds(30));
  void start();
  void stop();
  double congestion() const { return congestion_; }
  std::uint64_t emitted() const { return emitted_; }

 private:
  void tick();
  sim::Simulator& sim_;
  RecordSink sink_;
  sim::SimDuration period_;
  double congestion_ = 0.3;  // 0 = free flow, 1 = jammed
  std::optional<sim::Simulator::PeriodicHandle> handle_;
  std::uint64_t emitted_ = 0;
};

class SocialFeed {
 public:
  SocialFeed(sim::Simulator& sim, RecordSink sink,
             double events_per_hour = 6.0);
  void start();
  void stop();
  std::uint64_t emitted() const { return emitted_; }

 private:
  void arm();
  sim::Simulator& sim_;
  RecordSink sink_;
  double rate_per_s_;
  bool stopped_ = false;
  std::uint64_t emitted_ = 0;
};

}  // namespace vdap::ddi
