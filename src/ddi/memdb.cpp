#include "ddi/memdb.hpp"

namespace vdap::ddi {

void MemDb::put(const std::string& key, DataRecord value, sim::SimTime now,
                sim::SimDuration ttl) {
  if (ttl <= 0) ttl = options_.default_ttl;
  std::uint64_t size = encoded_size(value) + key.size();
  auto it = entries_.find(key);
  if (it != entries_.end()) remove(it);
  if (size > options_.capacity_bytes) return;  // would never fit
  evict_for(size);
  lru_.push_front(key);
  Entry e;
  e.value = std::move(value);
  e.expires = now + ttl;
  e.size = size;
  e.lru_it = lru_.begin();
  entries_.emplace(key, std::move(e));
  bytes_ += size;
}

std::optional<DataRecord> MemDb::get(const std::string& key,
                                     sim::SimTime now) {
  auto it = entries_.find(key);
  if (it == entries_.end() || it->second.expires <= now) {
    if (it != entries_.end()) remove(it);
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  // Refresh recency.
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return it->second.value;
}

bool MemDb::contains(const std::string& key, sim::SimTime now) const {
  auto it = entries_.find(key);
  return it != entries_.end() && it->second.expires > now;
}

bool MemDb::erase(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  remove(it);
  return true;
}

void MemDb::purge_expired(sim::SimTime now) {
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires <= now) {
      auto victim = it++;
      remove(victim);
    } else {
      ++it;
    }
  }
}

std::vector<DataRecord> MemDb::drain_expired(sim::SimTime now) {
  std::vector<DataRecord> out;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.expires <= now) {
      out.push_back(std::move(it->second.value));
      auto victim = it++;
      remove(victim);
    } else {
      ++it;
    }
  }
  return out;
}

void MemDb::evict_for(std::uint64_t needed) {
  while (bytes_ + needed > options_.capacity_bytes && !lru_.empty()) {
    auto it = entries_.find(lru_.back());
    remove(it);
    ++evictions_;
  }
}

void MemDb::remove(std::unordered_map<std::string, Entry>::iterator it) {
  bytes_ -= it->second.size;
  lru_.erase(it->second.lru_it);
  entries_.erase(it);
}

}  // namespace vdap::ddi
