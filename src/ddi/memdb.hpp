// In-memory database (§IV-D): "in-memory database caches the frequently
// used data from disk database to decrease the response latency of request.
// For all the data caches into the in-memory database, a survival time is
// set for it." A TTL + LRU keyed cache in the spirit of Redis: entries
// expire at their survival time, and when the byte budget is exceeded the
// least-recently-used entries are evicted first.
#pragma once

#include <cstdint>
#include <list>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "ddi/record.hpp"

namespace vdap::ddi {

struct MemDbOptions {
  std::uint64_t capacity_bytes = 64ull << 20;  // 64 MiB cache
  sim::SimDuration default_ttl = sim::seconds(60);
};

class MemDb {
 public:
  explicit MemDb(MemDbOptions options = {}) : options_(options) {}

  /// Inserts or replaces `key`. TTL <= 0 uses the default. `now` drives
  /// expiry (the caller passes simulation time).
  void put(const std::string& key, DataRecord value, sim::SimTime now,
           sim::SimDuration ttl = 0);

  /// Returns the value when present and unexpired; refreshes LRU recency.
  std::optional<DataRecord> get(const std::string& key, sim::SimTime now);

  bool contains(const std::string& key, sim::SimTime now) const;
  bool erase(const std::string& key);

  /// Drops every expired entry (put/get do this lazily per key).
  void purge_expired(sim::SimTime now);

  /// Entries whose TTL expired and were never re-written — the DDI service
  /// layer flushes these to the disk database ("when the survival time is
  /// up ... the data in in-memory database would be written to disk").
  std::vector<DataRecord> drain_expired(sim::SimTime now);

  std::size_t size() const { return entries_.size(); }
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t evictions() const { return evictions_; }
  double hit_rate() const {
    std::uint64_t total = hits_ + misses_;
    return total > 0 ? static_cast<double>(hits_) / total : 0.0;
  }

 private:
  struct Entry {
    DataRecord value;
    sim::SimTime expires;
    std::uint64_t size;
    std::list<std::string>::iterator lru_it;
  };

  void evict_for(std::uint64_t needed);
  void remove(std::unordered_map<std::string, Entry>::iterator it);

  MemDbOptions options_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::uint64_t bytes_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace vdap::ddi
