#include "ddi/ddi.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"
#include "util/strings.hpp"

namespace vdap::ddi {

Ddi::Ddi(sim::Simulator& sim, DdiOptions options)
    : sim_(sim),
      options_(options),
      cache_(options.mem),
      disk_(std::make_unique<DiskDb>(options.disk)) {
  sim_.every(options_.flush_period, [this]() { flush_staged(); },
             options_.flush_period);
}

void Ddi::upload(DataRecord rec) {
  ++uploads_;
  telemetry::count("ddi.uploads", {{"stream", rec.stream}});
  // New data invalidates cached query results for the stream: rather than
  // track per-range dependencies we simply let cached entries age out via
  // TTL, matching the paper's survival-time design. Staged records are
  // always merged into query results, so reads stay correct.
  std::string stream = rec.stream;
  staged_[stream].push_back(Staged{sim_.now(), std::move(rec)});
}

void Ddi::flush_staged(bool force_all) {
  sim::SimTime cutoff = sim_.now() - options_.staging_ttl;
  std::int64_t flushed = 0;
  std::int64_t failures = 0;
  for (auto& [stream, vec] : staged_) {
    auto keep = vec.begin();
    for (auto it = vec.begin(); it != vec.end(); ++it) {
      bool persisted = false;
      if (force_all || it->staged_at <= cutoff) {
        try {
          disk_->put(it->rec);
          persisted = true;
          ++flushed;
        } catch (const DiskWriteError&) {
          // Disk fault: keep the record staged; a later flush retries it.
          ++disk_write_failures_;
          ++failures;
        }
      }
      if (!persisted) {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    vec.erase(keep, vec.end());
  }
  disk_->flush();
  if (telemetry::on()) {
    telemetry::count("ddi.flushed", flushed);
    if (failures > 0) telemetry::count("ddi.disk_write_failures", failures);
    telemetry::gauge("ddi.staged", static_cast<double>(staged_count()));
    if (flushed > 0 || failures > 0) {
      json::Object args;
      args["flushed"] = flushed;
      if (failures > 0) args["failures"] = failures;
      telemetry::tracer().instant(sim_.now(), "ddi", "ddi.flush", "ddi",
                                  std::move(args));
    }
  }
  if (options_.retention_max_bytes > 0 || options_.retention_max_age > 0) {
    sim::SimTime cutoff_ts =
        options_.retention_max_age > 0
            ? std::max<sim::SimTime>(0, sim_.now() - options_.retention_max_age)
            : sim::kTimeZero;
    disk_->enforce_retention(options_.retention_max_bytes, cutoff_ts);
  }
}

std::uint64_t Ddi::staged_count() const {
  std::uint64_t n = 0;
  for (const auto& [stream, vec] : staged_) n += vec.size();
  return n;
}

std::string Ddi::cache_key(const DownloadRequest& req) {
  std::string key = util::format(
      "q:%s:%lld:%lld", req.stream.c_str(),
      static_cast<long long>(req.t0), static_cast<long long>(req.t1));
  if (req.geo) {
    key += util::format(":g:%.5f:%.5f:%.5f:%.5f", req.lat0, req.lat1,
                        req.lon0, req.lon1);
  }
  return key;
}

std::vector<DataRecord> Ddi::collect(const DownloadRequest& req) {
  std::vector<DataRecord> out =
      req.geo ? disk_->query_geo(req.stream, req.t0, req.t1, req.lat0,
                                 req.lat1, req.lon0, req.lon1)
              : disk_->query(req.stream, req.t0, req.t1);
  // Merge still-staged records in the range.
  auto it = staged_.find(req.stream);
  if (it != staged_.end()) {
    for (const Staged& s : it->second) {
      const DataRecord& r = s.rec;
      if (r.timestamp < req.t0 || r.timestamp > req.t1) continue;
      if (req.geo && (r.lat < req.lat0 || r.lat > req.lat1 ||
                      r.lon < req.lon0 || r.lon > req.lon1)) {
        continue;
      }
      out.push_back(r);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const DataRecord& a, const DataRecord& b) {
                     return a.timestamp < b.timestamp;
                   });
  return out;
}

DownloadResponse Ddi::download_now(const DownloadRequest& req) {
  ++downloads_;
  telemetry::count("ddi.downloads", {{"stream", req.stream}});
  DownloadResponse resp;
  std::string key = cache_key(req);
  auto cached = cache_.get(key, sim_.now());
  if (cached.has_value()) {
    telemetry::count("ddi.cache_hits");
    // Cached responses store the packed records in the payload.
    resp.from_cache = true;
    resp.latency = options_.mem_latency;
    const json::Array& arr = cached->payload.as_array();
    resp.records.reserve(arr.size());
    for (const json::Value& v : arr) {
      DataRecord r;
      r.stream = req.stream;
      r.timestamp = v.get_int("ts");
      r.lat = v.get_double("lat");
      r.lon = v.get_double("lon");
      if (const json::Value* p = v.find("payload")) r.payload = *p;
      resp.records.push_back(std::move(r));
    }
    return resp;
  }
  telemetry::count("ddi.cache_misses");
  resp.from_cache = false;
  resp.latency = options_.disk_latency;
  resp.records = collect(req);
  // Cache the result for subsequent identical requests.
  json::Array packed;
  packed.reserve(resp.records.size());
  for (const DataRecord& r : resp.records) {
    json::Value v;
    v["ts"] = r.timestamp;
    v["lat"] = r.lat;
    v["lon"] = r.lon;
    v["payload"] = r.payload;
    packed.push_back(std::move(v));
  }
  DataRecord cache_rec;
  cache_rec.stream = "cache";
  cache_rec.timestamp = sim_.now();
  cache_rec.payload = json::Value(std::move(packed));
  cache_.put(key, std::move(cache_rec), sim_.now());
  return resp;
}

void Ddi::download(const DownloadRequest& req,
                   std::function<void(const DownloadResponse&)> done) {
  DownloadResponse resp = download_now(req);
  sim_.after(resp.latency, [resp = std::move(resp),
                            done = std::move(done)]() { done(resp); });
}

}  // namespace vdap::ddi
