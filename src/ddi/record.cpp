#include "ddi/record.hpp"

#include <cstring>

namespace vdap::ddi {

namespace {

template <typename T>
void put(std::vector<std::uint8_t>& out, T value) {
  std::uint8_t bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.insert(out.end(), bytes, bytes + sizeof(T));
}

template <typename T>
bool get(const std::vector<std::uint8_t>& buf, std::size_t& pos, T* value) {
  if (pos + sizeof(T) > buf.size()) return false;
  std::memcpy(value, buf.data() + pos, sizeof(T));
  pos += sizeof(T);
  return true;
}

}  // namespace

void encode(const DataRecord& rec, std::vector<std::uint8_t>& out) {
  std::string payload = rec.payload.dump();
  std::uint32_t total = static_cast<std::uint32_t>(
      2 + rec.stream.size() + 8 + 8 + 8 + 4 + payload.size());
  put<std::uint32_t>(out, total);
  put<std::uint16_t>(out, static_cast<std::uint16_t>(rec.stream.size()));
  out.insert(out.end(), rec.stream.begin(), rec.stream.end());
  put<std::int64_t>(out, rec.timestamp);
  put<double>(out, rec.lat);
  put<double>(out, rec.lon);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
}

std::optional<DataRecord> decode(const std::vector<std::uint8_t>& buf,
                                 std::size_t& offset) {
  std::size_t pos = offset;
  std::uint32_t total = 0;
  if (!get(buf, pos, &total)) return std::nullopt;
  if (pos + total > buf.size()) return std::nullopt;
  std::size_t end = pos + total;

  DataRecord rec;
  std::uint16_t stream_len = 0;
  if (!get(buf, pos, &stream_len)) return std::nullopt;
  if (pos + stream_len > end) return std::nullopt;
  rec.stream.assign(reinterpret_cast<const char*>(buf.data() + pos),
                    stream_len);
  pos += stream_len;
  if (!get(buf, pos, &rec.timestamp)) return std::nullopt;
  if (!get(buf, pos, &rec.lat)) return std::nullopt;
  if (!get(buf, pos, &rec.lon)) return std::nullopt;
  std::uint32_t payload_len = 0;
  if (!get(buf, pos, &payload_len)) return std::nullopt;
  if (pos + payload_len != end) return std::nullopt;
  std::string payload(reinterpret_cast<const char*>(buf.data() + pos),
                      payload_len);
  auto parsed = json::try_parse(payload);
  if (!parsed) return std::nullopt;
  rec.payload = std::move(*parsed);
  offset = end;
  return rec;
}

std::size_t encoded_size(const DataRecord& rec) {
  return 4 + 2 + rec.stream.size() + 8 + 8 + 8 + 4 + rec.payload.dump().size();
}

}  // namespace vdap::ddi
