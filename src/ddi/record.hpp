// DDI records (§IV-D): every datum the Driving Data Integrator stores is
// time-space keyed — "All the related data includes location and timestamp."
// Records carry a stream name (vehicle/obd, env/weather, env/traffic,
// social/events), the capture time, a location, and a JSON payload.
// A compact length-prefixed binary codec serializes them for the disk
// database and for upload to the cloud data server.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"

namespace vdap::ddi {

struct DataRecord {
  std::string stream;
  sim::SimTime timestamp = 0;
  double lat = 0.0;
  double lon = 0.0;
  json::Value payload;

  bool operator==(const DataRecord& other) const {
    return stream == other.stream && timestamp == other.timestamp &&
           lat == other.lat && lon == other.lon && payload == other.payload;
  }
};

/// Appends the record's binary encoding to `out`:
///   u32 total_len | u16 stream_len | stream | i64 ts | f64 lat | f64 lon |
///   u32 payload_len | payload(json)
void encode(const DataRecord& rec, std::vector<std::uint8_t>& out);

/// Decodes one record starting at `offset`; advances `offset` past it.
/// Returns nullopt on truncated or corrupt input (offset unchanged).
std::optional<DataRecord> decode(const std::vector<std::uint8_t>& buf,
                                 std::size_t& offset);

/// Encoded size without encoding (for storage accounting).
std::size_t encoded_size(const DataRecord& rec);

}  // namespace vdap::ddi
