// Telemetry exporters:
//   * chrome_trace_json() — the Chrome trace-event JSON format, loadable
//     in Perfetto (https://ui.perfetto.dev) or chrome://tracing. Track
//     names become thread_name metadata records; span/instant/counter
//     events follow. Serialization goes through util::json, whose ordered
//     objects make the output byte-deterministic — the `trace` test suite
//     compares whole exports across replayed runs.
//   * metrics_snapshot_json() — one JSON object per call with every
//     counter, gauge, and histogram digest; Session emits these
//     periodically as JSONL (one snapshot per line).
//   * metrics_text_report() — the end-of-run human-readable table.
#pragma once

#include <string>
#include <string_view>

#include "telemetry/telemetry.hpp"

namespace vdap::telemetry {

/// Serializes the tracer's events as a Chrome trace-event JSON document:
/// {"displayTimeUnit":"ms","traceEvents":[...]}. Deterministic for a
/// deterministic event sequence.
std::string chrome_trace_json(const Tracer& tracer);

/// One metrics snapshot: {"t": <sim µs>, "counters": {...}, "gauges":
/// {...}, "histograms": {name: {count,mean,min,max,p50,p95,p99}, ...}}.
json::Value metrics_snapshot_json(const MetricsRegistry& metrics,
                                  sim::SimTime now);

/// End-of-run report: one util::TextTable per metric family.
std::string metrics_text_report(const MetricsRegistry& metrics);

/// Writes `content` to `path` (truncating); returns false on I/O failure.
bool write_text_file(const std::string& path, std::string_view content);

}  // namespace vdap::telemetry
