// One telemetry capture, scoped to one simulation run.
//
// Construction resets the process-wide registry/tracer and enables
// collection; destruction disables it again. Captures must not nest (the
// registry is process-wide — see telemetry.hpp); the constructor enforces
// this. Periodic JSONL metric snapshots ride on Simulator::every, so they
// land at deterministic sim times and appear in the event stream like any
// other scheduled work.
//
// Header-only on purpose: the telemetry library proper depends only on
// util + sim/time; the Simulator coupling below compiles into the caller,
// which links vdap_sim anyway.
#pragma once

#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulator.hpp"
#include "telemetry/export.hpp"
#include "telemetry/telemetry.hpp"

namespace vdap::telemetry {

class Session {
 public:
  explicit Session(sim::Simulator& sim) : sim_(sim) {
    if (Telemetry::enabled()) {
      throw std::logic_error("telemetry session already active");
    }
    if (bound_domain() != nullptr) {
      throw std::logic_error(
          "a telemetry domain is already bound on this thread (sharded "
          "capture live?) — Session would shadow it");
    }
    Telemetry::instance().reset();
    Telemetry::instance().enable();
  }

  ~Session() {
    stop_snapshots();
    if (flight_prev_set_) bind_flight(flight_prev_);
    Telemetry::instance().disable();
  }

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Binds a flight ring to this thread for the session's lifetime (the
  /// single-simulator analogue of ShardedSimulator::set_flight): every
  /// instrumentation site below also mirrors into the black box. The
  /// previous binding is restored on destruction. Pass nullptr to detach.
  void attach_flight(FlightRing* ring) {
    if (flight_prev_set_) {
      bind_flight(flight_prev_);
      flight_prev_set_ = false;
    }
    if (ring != nullptr) {
      flight_prev_ = bind_flight(ring);
      flight_prev_set_ = true;
    }
  }

  /// Starts periodic metric snapshots (one JSONL line per period).
  void start_snapshots(sim::SimDuration period) {
    stop_snapshots();
    handle_ = sim_.every(period, [this]() { snapshot(); }, period);
  }
  void stop_snapshots() {
    if (handle_) handle_->stop();
    handle_.reset();
  }

  /// Takes one snapshot now (also called by the periodic schedule).
  void snapshot() {
    lines_.push_back(metrics_snapshot_json(metrics(), sim_.now()).dump());
  }

  /// JSONL metric snapshots collected so far, one JSON object per line.
  const std::vector<std::string>& snapshot_lines() const { return lines_; }
  std::string snapshots_jsonl() const {
    std::string out;
    for (const std::string& line : lines_) {
      out += line;
      out += '\n';
    }
    return out;
  }

  /// Chrome trace-event JSON of everything recorded so far.
  std::string chrome_trace() const { return chrome_trace_json(tracer()); }

  /// End-of-run text report (util::TextTable per metric family).
  std::string text_report() const { return metrics_text_report(metrics()); }

  /// Spans opened but never closed — must be 0 after a full drain.
  std::size_t open_spans() const { return tracer().open_spans(); }

  bool write_chrome_trace(const std::string& path) const {
    return write_text_file(path, chrome_trace());
  }
  bool write_snapshots(const std::string& path) const {
    return write_text_file(path, snapshots_jsonl());
  }

 private:
  sim::Simulator& sim_;
  std::optional<sim::Simulator::PeriodicHandle> handle_;
  std::vector<std::string> lines_;
  FlightRing* flight_prev_ = nullptr;
  bool flight_prev_set_ = false;
};

}  // namespace vdap::telemetry
