// Continuous profiling plane (DESIGN.md §6j): a sampling profiler that
// attributes wall time to code regions without stack unwinding.
//
// Each registered thread keeps a fixed-depth stack of interned tag ids,
// maintained by RAII PROF_SCOPE("area/op") scopes (and mirrored from
// telemetry::Tracer spans, so existing instrumentation is reused). The
// stack is published through a per-thread seqlock; a background sampler
// thread snapshots every registered stack at a fixed interval and folds
// the samples into collapsed-stack tables ("frame;frame;frame count",
// Brendan Gregg's flamegraph input format).
//
// Design constraints, following the runtime-plane precedent of
// shards.jsonl (§6h) and the flight recorder (§6i):
//   * Wall plane only — profiles measure wall time, so they are NOT part
//     of any byte-identity contract. Sim-plane outputs (digests, traces,
//     metrics, frames, incident bundles) are byte-identical with the
//     sampler on or off; the `prof` test suite proves it across the
//     shard × thread matrix.
//   * Zero hot-path cost when off — PROF_SCOPE compiles to one relaxed
//     thread-local pointer check when no slot is bound. No allocation,
//     no locking, no atomics beyond the slot's own seqlock when on.
//   * No unwinding, no signals — the sampler only ever reads the
//     seqlock-published arrays; a torn read is detected by the sequence
//     word and retried. Safe under TSan: every shared word is an atomic.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace vdap::telemetry::prof {

/// Interned tag id. 0 is reserved as "invalid / not interned" so callers
/// can use it as a sentinel (e.g. Tracer spans recorded while no slot was
/// bound).
using TagId = std::uint32_t;
inline constexpr TagId kInvalidTag = 0;

/// Interns `name` in the process-wide tag table and returns its stable id
/// (>= 1). Thread-safe; idempotent per name. PROF_SCOPE caches the result
/// in a function-local static so steady-state scopes never take the lock.
TagId intern_tag(std::string_view name);

/// Name for an interned id ("" for kInvalidTag / unknown ids). Returns a
/// copy: the table may grow concurrently and references must not dangle.
std::string tag_name(TagId id);

/// Number of tags interned so far (monotonic; for tests).
std::size_t tag_count();

/// Fixed stack depth. Deeper nesting is counted (truncated()) but not
/// recorded — the sampler then sees the outermost kMaxProfDepth frames.
inline constexpr std::size_t kMaxProfDepth = 32;

/// One registered thread's published tag stack. The owning thread is the
/// only writer (push/pop); the sampler thread reads through the seqlock.
/// All cross-thread words are atomics, so the retry loop is TSan-clean.
class ProfSlot {
 public:
  /// Writer side (owning thread only).
  void push(TagId id);
  /// Pops the topmost frame (no-op on an empty stack).
  void pop();
  /// Removes the topmost frame equal to `id`, shifting deeper frames up —
  /// tolerates out-of-order async span closes. No-op if absent.
  void pop_tag(TagId id);

  /// Reader side (sampler thread). Copies a consistent snapshot into
  /// `out` and returns its depth; returns 0 for an empty stack, and -1 if
  /// a consistent read could not be obtained in a bounded number of
  /// retries (writer mid-update for the whole window — skip the tick).
  int snapshot(std::array<TagId, kMaxProfDepth>& out) const;

  /// Writer-only count of frames dropped because the stack was full.
  std::uint64_t truncated() const {
    return truncated_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint32_t> seq_{0};
  std::atomic<std::uint32_t> depth_{0};
  std::array<std::atomic<TagId>, kMaxProfDepth> tags_{};
  std::atomic<std::uint64_t> truncated_{0};
};

namespace internal {
/// The calling thread's profiling slot; nullptr = profiling off on this
/// thread. Mirrors telemetry::internal::tls_domain / tls_flight: a worker
/// binds its shard's slot around each epoch, the coordinator binds its
/// own slot around barrier sections.
inline thread_local ProfSlot* tls_prof = nullptr;
}  // namespace internal

/// Binds `slot` as the calling thread's profiling target and returns the
/// previous binding (save/restore, like bind_domain / bind_flight).
inline ProfSlot* bind_prof(ProfSlot* slot) {
  ProfSlot* prev = internal::tls_prof;
  internal::tls_prof = slot;
  return prev;
}

/// The calling thread's current profiling slot (nullptr when off).
inline ProfSlot* bound_prof() { return internal::tls_prof; }

/// RAII frame: pushes `tag` on the bound slot for the scope's lifetime.
/// When no slot is bound the constructor is a single pointer check.
class ProfScope {
 public:
  explicit ProfScope(TagId tag) : slot_(internal::tls_prof) {
    if (slot_ != nullptr) slot_->push(tag);
  }
  ~ProfScope() {
    if (slot_ != nullptr) slot_->pop();
  }
  ProfScope(const ProfScope&) = delete;
  ProfScope& operator=(const ProfScope&) = delete;

 private:
  ProfSlot* slot_;
};

/// One collapsed-stack row: `stack` is ';'-joined frame names, outermost
/// first; `shard` is the slot index the samples were taken from.
struct ProfileRow {
  std::size_t shard = 0;
  std::string stack;
  std::uint64_t count = 0;
};

/// A parsed (or freshly collected) profile artifact.
struct ProfileData {
  std::uint64_t interval_us = 0;
  std::uint64_t samples = 0;     // sampler ticks taken (incl. all-idle)
  std::size_t slots = 0;
  std::uint64_t truncated = 0;   // frames dropped to the depth cap
  std::vector<ProfileRow> rows;  // sorted by (shard, stack)
};

/// Sampler configuration. interval_us is clamped to >= 50 to keep a
/// misconfigured environment from busy-spinning the sampler thread.
struct ProfOptions {
  std::uint64_t interval_us = 1000;  // ~1 kHz default

  /// Applies the VDAP_PROF_INTERVAL_US environment override, if set to a
  /// positive integer.
  static ProfOptions from_env(ProfOptions base);
  static ProfOptions from_env();
};

/// Owns the slot array and the background sampler thread. Lifecycle:
/// construct with the slot count (shards + coordinator + pool workers),
/// bind slots on their owning threads, start(), run the workload, stop(),
/// then read the collected profile. The sampler only ever reads slot
/// seqlocks, so it cannot perturb sim-plane state.
class Profiler {
 public:
  explicit Profiler(std::size_t slots, ProfOptions opts = {});
  ~Profiler();

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  std::size_t slots() const { return slots_.size(); }
  /// nullptr for out-of-range indices, so callers sized for a maximum can
  /// bind unconditionally.
  ProfSlot* slot(std::size_t i) {
    return i < slots_.size() ? slots_[i].get() : nullptr;
  }

  /// Spawns the sampler thread (idempotent).
  void start();
  /// Stops and joins the sampler (idempotent; also run by the dtor).
  void stop();
  bool running() const { return running_; }

  std::uint64_t interval_us() const { return opts_.interval_us; }
  /// Sampler ticks taken so far (each tick snapshots every slot).
  std::uint64_t samples() const {
    return samples_.load(std::memory_order_relaxed);
  }

  /// The collected profile. Call after stop() for a complete view (the
  /// sampler owns the fold tables while running).
  ProfileData collect() const;

 private:
  void sampler_loop();

  ProfOptions opts_;
  std::vector<std::unique_ptr<ProfSlot>> slots_;
  // Fold tables, one per slot, keyed by the raw tag-id stack. Written by
  // the sampler thread only; read by collect() after the join.
  std::vector<std::map<std::vector<TagId>, std::uint64_t>> folds_;
  std::atomic<std::uint64_t> samples_{0};
  std::atomic<bool> stop_{false};
  bool running_ = false;
  std::thread sampler_;
};

/// Serializes a profile as JSONL: one meta object line followed by one
/// object per collapsed stack, keys in fixed order, rows sorted by
/// (shard, stack) — byte-stable for a given ProfileData.
std::string profile_jsonl(const ProfileData& data);

/// Merged whole-run collapsed-stack file ("frame;frame count" lines,
/// sorted by stack) — feed straight into flamegraph.pl.
std::string profile_folded(const ProfileData& data);

}  // namespace vdap::telemetry::prof

#define VDAP_PROF_CONCAT_(a, b) a##b
#define VDAP_PROF_CONCAT(a, b) VDAP_PROF_CONCAT_(a, b)

/// Pushes an interned frame for the enclosing scope. `name` must be a
/// string literal (interned once, in a function-local static). When no
/// slot is bound on this thread the cost is one thread-local pointer
/// check.
#define PROF_SCOPE(name)                                                   \
  static const ::vdap::telemetry::prof::TagId VDAP_PROF_CONCAT(            \
      vdap_prof_tag_, __LINE__) = ::vdap::telemetry::prof::intern_tag(name); \
  ::vdap::telemetry::prof::ProfScope VDAP_PROF_CONCAT(vdap_prof_scope_,    \
                                                      __LINE__)(           \
      VDAP_PROF_CONCAT(vdap_prof_tag_, __LINE__))
