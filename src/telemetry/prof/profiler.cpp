#include "telemetry/prof/profiler.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <mutex>
#include <sstream>

namespace vdap::telemetry::prof {

// --- tag interning ---------------------------------------------------------

namespace {

struct TagTable {
  std::mutex mu;
  std::map<std::string, TagId, std::less<>> ids;
  std::vector<std::string> names{""};  // index 0 = kInvalidTag
};

TagTable& tag_table() {
  static TagTable table;
  return table;
}

}  // namespace

TagId intern_tag(std::string_view name) {
  TagTable& t = tag_table();
  std::lock_guard<std::mutex> lock(t.mu);
  auto it = t.ids.find(name);
  if (it != t.ids.end()) return it->second;
  TagId id = static_cast<TagId>(t.names.size());
  t.names.emplace_back(name);
  t.ids.emplace(std::string(name), id);
  return id;
}

std::string tag_name(TagId id) {
  TagTable& t = tag_table();
  std::lock_guard<std::mutex> lock(t.mu);
  if (id >= t.names.size()) return "";
  return t.names[id];
}

std::size_t tag_count() {
  TagTable& t = tag_table();
  std::lock_guard<std::mutex> lock(t.mu);
  return t.names.size() - 1;  // slot 0 is the invalid sentinel
}

// --- ProfSlot --------------------------------------------------------------
//
// Seqlock protocol. Writer (owning thread):
//   seq <- seq+1 (odd: update in progress), release-ordered after nothing
//   ... relaxed stores to tags/depth ...
//   seq <- seq+2 (even again), release so readers ordering off the second
//   load observe the stores.
// Reader (sampler):
//   s1 <- seq (acquire); skip if odd
//   relaxed copies of tags/depth
//   acquire fence, s2 <- seq (relaxed); retry unless s1 == s2.
// Every word is an atomic, so concurrent access is defined behaviour and
// TSan-clean; the sequence check discards torn snapshots.

void ProfSlot::push(TagId id) {
  std::uint32_t d = depth_.load(std::memory_order_relaxed);
  if (d >= kMaxProfDepth) {
    truncated_.fetch_add(1, std::memory_order_relaxed);
    // Still count the virtual frame so pop() stays balanced.
    depth_.store(d + 1, std::memory_order_relaxed);
    return;
  }
  std::uint32_t s = seq_.load(std::memory_order_relaxed);
  seq_.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  tags_[d].store(id, std::memory_order_relaxed);
  depth_.store(d + 1, std::memory_order_relaxed);
  seq_.store(s + 2, std::memory_order_release);
}

void ProfSlot::pop() {
  std::uint32_t d = depth_.load(std::memory_order_relaxed);
  if (d == 0) return;
  if (d > kMaxProfDepth) {
    // Unwinding a frame that was truncated away: only the count moves.
    depth_.store(d - 1, std::memory_order_relaxed);
    return;
  }
  std::uint32_t s = seq_.load(std::memory_order_relaxed);
  seq_.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  depth_.store(d - 1, std::memory_order_relaxed);
  seq_.store(s + 2, std::memory_order_release);
}

void ProfSlot::pop_tag(TagId id) {
  std::uint32_t d = depth_.load(std::memory_order_relaxed);
  if (d == 0) return;
  if (d > kMaxProfDepth) {
    // The topmost frames were truncated; assume `id` is among them.
    depth_.store(d - 1, std::memory_order_relaxed);
    return;
  }
  // Find the topmost matching frame (owning thread: relaxed reads are its
  // own prior writes).
  std::uint32_t idx = d;
  while (idx > 0) {
    if (tags_[idx - 1].load(std::memory_order_relaxed) == id) break;
    --idx;
  }
  if (idx == 0) return;  // not on the stack (span closed after rebinding)
  std::uint32_t s = seq_.load(std::memory_order_relaxed);
  seq_.store(s + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  for (std::uint32_t i = idx; i < d; ++i) {
    tags_[i - 1].store(tags_[i].load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
  }
  depth_.store(d - 1, std::memory_order_relaxed);
  seq_.store(s + 2, std::memory_order_release);
}

int ProfSlot::snapshot(std::array<TagId, kMaxProfDepth>& out) const {
  for (int attempt = 0; attempt < 8; ++attempt) {
    std::uint32_t s1 = seq_.load(std::memory_order_acquire);
    if (s1 & 1u) continue;  // writer mid-update
    std::uint32_t d = depth_.load(std::memory_order_relaxed);
    std::uint32_t n = std::min<std::uint32_t>(d, kMaxProfDepth);
    for (std::uint32_t i = 0; i < n; ++i) {
      out[i] = tags_[i].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    std::uint32_t s2 = seq_.load(std::memory_order_relaxed);
    if (s1 == s2) return static_cast<int>(n);
  }
  return -1;
}

// --- ProfOptions -----------------------------------------------------------

ProfOptions ProfOptions::from_env() { return from_env(ProfOptions{}); }

ProfOptions ProfOptions::from_env(ProfOptions base) {
  if (const char* env = std::getenv("VDAP_PROF_INTERVAL_US")) {
    char* end = nullptr;
    unsigned long long v = std::strtoull(env, &end, 10);
    if (end != nullptr && end != env && *end == '\0' && v > 0) {
      base.interval_us = static_cast<std::uint64_t>(v);
    }
  }
  return base;
}

// --- Profiler --------------------------------------------------------------

Profiler::Profiler(std::size_t slots, ProfOptions opts) : opts_(opts) {
  if (opts_.interval_us < 50) opts_.interval_us = 50;
  slots_.reserve(slots);
  for (std::size_t i = 0; i < slots; ++i) {
    slots_.push_back(std::make_unique<ProfSlot>());
  }
  folds_.resize(slots);
}

Profiler::~Profiler() { stop(); }

void Profiler::start() {
  if (running_) return;
  stop_.store(false, std::memory_order_relaxed);
  sampler_ = std::thread([this] { sampler_loop(); });
  running_ = true;
}

void Profiler::stop() {
  if (!running_) return;
  stop_.store(true, std::memory_order_relaxed);
  if (sampler_.joinable()) sampler_.join();
  running_ = false;
}

void Profiler::sampler_loop() {
  std::array<TagId, kMaxProfDepth> stack{};
  std::vector<TagId> key;
  const auto interval = std::chrono::microseconds(opts_.interval_us);
  while (!stop_.load(std::memory_order_relaxed)) {
    for (std::size_t i = 0; i < slots_.size(); ++i) {
      int depth = slots_[i]->snapshot(stack);
      if (depth <= 0) continue;  // empty, or writer never settled: skip
      key.assign(stack.begin(), stack.begin() + depth);
      ++folds_[i][key];
    }
    samples_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(interval);
  }
}

ProfileData Profiler::collect() const {
  ProfileData data;
  data.interval_us = opts_.interval_us;
  data.samples = samples();
  data.slots = slots_.size();
  for (const auto& slot : slots_) data.truncated += slot->truncated();
  for (std::size_t i = 0; i < folds_.size(); ++i) {
    // Resolve ids to names, re-fold (two ids can map to one rendered
    // stack only if interning raced, which it cannot — but std::map keyed
    // by the string keeps rows sorted by stack either way).
    std::map<std::string, std::uint64_t> by_stack;
    for (const auto& [ids, count] : folds_[i]) {
      std::string stack;
      for (TagId id : ids) {
        if (!stack.empty()) stack += ';';
        stack += tag_name(id);
      }
      by_stack[stack] += count;
    }
    for (auto& [stack, count] : by_stack) {
      data.rows.push_back(ProfileRow{i, stack, count});
    }
  }
  return data;
}

// --- export ----------------------------------------------------------------

namespace {

// Tag names are controlled literals, but mirrored Tracer span names pass
// through too — escape the JSON string specials rather than trusting them.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

std::string profile_jsonl(const ProfileData& data) {
  std::ostringstream out;
  out << "{\"interval_us\":" << data.interval_us
      << ",\"samples\":" << data.samples << ",\"slots\":" << data.slots
      << ",\"truncated\":" << data.truncated << "}\n";
  for (const ProfileRow& row : data.rows) {
    out << "{\"count\":" << row.count << ",\"shard\":" << row.shard
        << ",\"stack\":\"" << json_escape(row.stack) << "\"}\n";
  }
  return out.str();
}

std::string profile_folded(const ProfileData& data) {
  std::map<std::string, std::uint64_t> merged;
  for (const ProfileRow& row : data.rows) merged[row.stack] += row.count;
  std::ostringstream out;
  for (const auto& [stack, count] : merged) {
    out << stack << ' ' << count << '\n';
  }
  return out.str();
}

}  // namespace vdap::telemetry::prof
