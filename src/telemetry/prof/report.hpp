// Parse-back and rendering for profile.jsonl artifacts (DESIGN.md §6j).
//
// The JSONL form written by prof::profile_jsonl is the interchange format:
// run_fleet / run_fleet_scale / scenario_runner --capture emit it next to
// shards.jsonl, benches attach it next to their BENCH_*.json tables, and
// `vdap-report --profile <a> [--diff <b>]` parses it back and renders the
// top-N frame table (or, with --diff, the per-frame delta table that turns
// a bench-gate wall regression into a named code region).
#pragma once

#include <string>
#include <string_view>

#include "telemetry/prof/profiler.hpp"

namespace vdap::telemetry::prof {

/// Parses profile_jsonl output (meta line + collapsed-stack rows). Returns
/// false (with *error set, including the line number) on malformed input;
/// unknown keys are ignored for forward compatibility.
bool parse_profile_jsonl(std::string_view text, ProfileData* data,
                         std::string* error);

/// Per-frame flat view of a profile: `self` counts samples where the frame
/// was the innermost one, `total` counts samples where it appeared
/// anywhere on the stack (each frame counted once per sample, so
/// recursion does not double-count).
struct FrameStat {
  std::string frame;
  std::uint64_t self = 0;
  std::uint64_t total = 0;
};

/// Flattens collapsed stacks into per-frame self/total counts, sorted by
/// descending self (ties by frame name).
std::vector<FrameStat> frame_stats(const ProfileData& data);

/// The table `vdap-report --profile` prints: top `top_n` frames by self
/// samples, with self/total shares of the sampled (non-idle) time.
std::string profile_table(const ProfileData& data, std::size_t top_n = 20);

/// The table `vdap-report --profile a --diff b` prints: per-frame change
/// in self-share between baseline `base` and candidate `cand`, sorted by
/// descending share gain — the frames that absorbed the regressed time
/// come first. Frames present in only one profile are included.
std::string profile_diff_table(const ProfileData& base,
                               const ProfileData& cand,
                               std::size_t top_n = 20);

}  // namespace vdap::telemetry::prof
