#include "telemetry/prof/report.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <set>

#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace vdap::telemetry::prof {

bool parse_profile_jsonl(std::string_view text, ProfileData* data,
                         std::string* error) {
  *data = ProfileData{};
  bool saw_meta = false;
  std::size_t line_no = 0;
  for (const std::string& line : util::split(text, '\n')) {
    ++line_no;
    if (line.empty()) continue;
    std::optional<json::Value> v = json::try_parse(line);
    if (!v || !v->is_object()) {
      if (error != nullptr) {
        *error = "profile line " + std::to_string(line_no) +
                 ": not a JSON object";
      }
      return false;
    }
    if (!saw_meta) {
      // First object is the meta line.
      if (!v->contains("interval_us")) {
        if (error != nullptr) {
          *error = "profile line " + std::to_string(line_no) +
                   ": missing interval_us meta";
        }
        return false;
      }
      data->interval_us = static_cast<std::uint64_t>(v->get_int("interval_us"));
      data->samples = static_cast<std::uint64_t>(v->get_int("samples"));
      data->slots = static_cast<std::size_t>(v->get_int("slots"));
      data->truncated = static_cast<std::uint64_t>(v->get_int("truncated"));
      saw_meta = true;
      continue;
    }
    ProfileRow row;
    row.shard = static_cast<std::size_t>(v->get_int("shard"));
    row.stack = v->get_string("stack");
    row.count = static_cast<std::uint64_t>(v->get_int("count"));
    if (row.stack.empty()) {
      if (error != nullptr) {
        *error = "profile line " + std::to_string(line_no) + ": empty stack";
      }
      return false;
    }
    data->rows.push_back(std::move(row));
  }
  if (!saw_meta) {
    if (error != nullptr) *error = "profile: no meta line";
    return false;
  }
  return true;
}

std::vector<FrameStat> frame_stats(const ProfileData& data) {
  std::map<std::string, FrameStat> by_frame;
  for (const ProfileRow& row : data.rows) {
    std::vector<std::string> frames = util::split(row.stack, ';');
    if (frames.empty()) continue;
    // total: once per distinct frame per stack (recursion-safe).
    std::set<std::string_view> seen;
    for (const std::string& f : frames) {
      if (!seen.insert(f).second) continue;
      FrameStat& s = by_frame[f];
      if (s.frame.empty()) s.frame = f;
      s.total += row.count;
    }
    by_frame[frames.back()].self += row.count;
  }
  std::vector<FrameStat> out;
  out.reserve(by_frame.size());
  for (auto& [_, s] : by_frame) out.push_back(std::move(s));
  std::sort(out.begin(), out.end(), [](const FrameStat& a, const FrameStat& b) {
    if (a.self != b.self) return a.self > b.self;
    return a.frame < b.frame;
  });
  return out;
}

namespace {

/// Samples that hit any stack at all (the denominator for shares; the
/// meta `samples` field counts ticks, including all-idle ones).
std::uint64_t sampled_total(const ProfileData& data) {
  // Sum of self counts == sum of row counts (each sample has exactly one
  // innermost frame).
  std::uint64_t total = 0;
  for (const ProfileRow& row : data.rows) total += row.count;
  return total;
}

std::string pct(std::uint64_t part, std::uint64_t whole) {
  if (whole == 0) return "-";
  return util::TextTable::num(100.0 * static_cast<double>(part) /
                                  static_cast<double>(whole),
                              1);
}

}  // namespace

std::string profile_table(const ProfileData& data, std::size_t top_n) {
  std::vector<FrameStat> stats = frame_stats(data);
  const std::uint64_t total = sampled_total(data);
  util::TextTable table(
      "profile (wall-clock plane — sampled tag stacks, not part of the "
      "deterministic capture)");
  table.set_header({"frame", "self", "self%", "total", "total%"});
  std::size_t n = 0;
  for (const FrameStat& s : stats) {
    if (n++ >= top_n) break;
    table.add_row({s.frame, std::to_string(s.self), pct(s.self, total),
                   std::to_string(s.total), pct(s.total, total)});
  }
  table.add_row({"(sampled)", std::to_string(total), "100.0",
                 std::to_string(total), "100.0"});
  return table.to_string();
}

std::string profile_diff_table(const ProfileData& base,
                               const ProfileData& cand, std::size_t top_n) {
  std::map<std::string, FrameStat> base_by, cand_by;
  for (FrameStat& s : frame_stats(base)) base_by[s.frame] = std::move(s);
  for (FrameStat& s : frame_stats(cand)) cand_by[s.frame] = std::move(s);
  const std::uint64_t base_total = sampled_total(base);
  const std::uint64_t cand_total = sampled_total(cand);

  struct Delta {
    std::string frame;
    double base_share = 0.0;  // self share in baseline, percent
    double cand_share = 0.0;  // self share in candidate, percent
    double delta = 0.0;       // cand - base, percentage points
    std::uint64_t base_self = 0;
    std::uint64_t cand_self = 0;
  };
  std::set<std::string> frames;
  for (const auto& [f, _] : base_by) frames.insert(f);
  for (const auto& [f, _] : cand_by) frames.insert(f);
  std::vector<Delta> deltas;
  deltas.reserve(frames.size());
  for (const std::string& f : frames) {
    Delta d;
    d.frame = f;
    if (auto it = base_by.find(f); it != base_by.end()) {
      d.base_self = it->second.self;
    }
    if (auto it = cand_by.find(f); it != cand_by.end()) {
      d.cand_self = it->second.self;
    }
    d.base_share = base_total == 0 ? 0.0
                                   : 100.0 * static_cast<double>(d.base_self) /
                                         static_cast<double>(base_total);
    d.cand_share = cand_total == 0 ? 0.0
                                   : 100.0 * static_cast<double>(d.cand_self) /
                                         static_cast<double>(cand_total);
    d.delta = d.cand_share - d.base_share;
    deltas.push_back(std::move(d));
  }
  std::sort(deltas.begin(), deltas.end(), [](const Delta& a, const Delta& b) {
    if (a.delta != b.delta) return a.delta > b.delta;
    return a.frame < b.frame;
  });

  util::TextTable table(
      "profile diff (self-share percentage points, candidate vs baseline — "
      "frames that absorbed time come first)");
  table.set_header(
      {"frame", "base self", "base%", "cand self", "cand%", "delta pp"});
  std::size_t n = 0;
  for (const Delta& d : deltas) {
    if (n++ >= top_n) break;
    std::string delta_str = util::TextTable::num(d.delta, 1);
    if (d.delta > 0.0) delta_str = "+" + delta_str;
    table.add_row({d.frame, std::to_string(d.base_self),
                   util::TextTable::num(d.base_share, 1),
                   std::to_string(d.cand_self),
                   util::TextTable::num(d.cand_share, 1), delta_str});
  }
  return table.to_string();
}

}  // namespace vdap::telemetry::prof
