// Per-vehicle telemetry shipper (DESIGN.md §6e): batches the vehicle's
// metric deltas and health events into sequence-numbered wire frames and
// ships them over its own net::Link toward the fleet aggregation tier.
//
// Transport behavior under net::ImpairmentController faults:
//   * the link spec is refreshed from the shared Topology before every
//     transmission, so degradations bite mid-flight and an unavailable
//     tier fails the attempt outright;
//   * failed attempts retry with doubling (capped) backoff up to
//     max_attempts, after which the frame is dropped;
//   * the outbound queue is bounded; overflow drops the OLDEST queued
//     frame (fresh telemetry is worth more than stale telemetry).
// Every drop path is accounted: after a drain,
//   frames_enqueued − frames_acked == frames_dropped
// exactly — the invariant the fleet chaos test asserts. When a
// telemetry::Session is live the same accounting is mirrored into the
// global registry as fleet.shipper.* counters labeled by vehicle.
//
// Each shipper draws its loss randomness from the link's own named RNG
// stream ("link.ship/<vehicle>"), so a fleet of shippers is deterministic
// per (seed, plan) and vehicles' streams are independent.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "net/link.hpp"
#include "net/topology.hpp"
#include "sim/simulator.hpp"
#include "telemetry/analysis/slo.hpp"
#include "telemetry/fleet/wire.hpp"

namespace vdap::telemetry::fleet {

class TelemetryShipper {
 public:
  struct Options {
    /// Tier the frames ship toward (its uplink path, collapsed).
    net::Tier tier = net::Tier::kCloud;
    /// Frame cut cadence; empty intervals cut no frame.
    sim::SimDuration flush_period = sim::seconds(1);
    /// Outbound frames queued behind the one in flight; overflow drops
    /// the oldest queued frame.
    std::size_t max_queue = 64;
    /// Pending samples kept per metric between cuts (drop-oldest).
    std::size_t max_samples_per_metric = 512;
    /// Pending health events kept between cuts (drop-oldest).
    std::size_t max_events = 64;
    /// Transmission attempts per frame before it is dropped.
    int max_attempts = 5;
    sim::SimDuration backoff_base = sim::msec(250);
    sim::SimDuration backoff_cap = sim::seconds(8);
  };

  struct Stats {
    std::uint64_t frames_enqueued = 0;
    std::uint64_t frames_acked = 0;
    std::uint64_t frames_dropped = 0;  // queue overflow + attempts exhausted
    std::uint64_t send_attempts = 0;
    std::uint64_t retries = 0;
    std::uint64_t wire_bytes = 0;      // bytes put on the wire (per attempt)
    std::uint64_t samples_recorded = 0;
    std::uint64_t samples_dropped = 0; // pending-buffer overflow
  };

  /// `deliver` fires on every frame the transport delivered, with the
  /// frame's encoded bytes — the aggregator's ingest point.
  using DeliverFn = std::function<void(const std::string& bytes)>;

  TelemetryShipper(sim::Simulator& sim, std::string vehicle,
                   net::Topology& topo, DeliverFn deliver, Options options);
  TelemetryShipper(sim::Simulator& sim, std::string vehicle,
                   net::Topology& topo, DeliverFn deliver)
      : TelemetryShipper(sim, std::move(vehicle), topo, std::move(deliver),
                         Options()) {}
  ~TelemetryShipper();

  TelemetryShipper(const TelemetryShipper&) = delete;
  TelemetryShipper& operator=(const TelemetryShipper&) = delete;

  // --- producer side (the vehicle's instrumentation feeds these) ----------
  void count(std::string_view name, std::int64_t by = 1);
  void gauge(std::string_view name, double value);
  /// Records a sample timestamped sim.now(). Non-finite values ignored.
  void observe(std::string_view name, double value);
  /// Forwards a HealthEvent (core::HealthController::set_event_sink).
  void on_health_event(const analysis::HealthEvent& event);

  /// Starts the periodic flush schedule.
  void start();
  /// Stops cutting new frames (queued frames keep draining).
  void stop();
  /// Cuts and enqueues a frame immediately if any payload is pending.
  void flush_now();

  const Stats& stats() const { return stats_; }
  const std::string& vehicle() const { return vehicle_; }
  std::uint64_t last_seq() const { return seq_; }
  /// Frames still queued or in flight.
  std::size_t backlog() const {
    return queue_.size() + (inflight_.has_value() ? 1 : 0);
  }
  bool idle() const { return backlog() == 0; }

 private:
  struct Outbound {
    std::uint64_t seq = 0;
    std::string bytes;
  };

  void cut_frame();
  void enqueue(Outbound frame);
  void maybe_send();
  void attempt();
  void settle(bool delivered);
  void drop_frame(std::uint64_t count);
  sim::SimDuration backoff(int attempt) const;
  void mirror_count(std::string_view name, std::int64_t by);

  sim::Simulator& sim_;
  std::string vehicle_;
  net::Topology& topo_;
  DeliverFn deliver_;
  Options opts_;
  std::unique_ptr<net::Link> link_;

  // Payload pending the next cut.
  std::map<std::string, std::int64_t> pending_counters_;
  std::map<std::string, double> pending_gauges_;
  std::map<std::string, std::vector<WireSample>> pending_samples_;
  std::vector<WireHealthEvent> pending_events_;

  std::deque<Outbound> queue_;
  std::optional<Outbound> inflight_;
  int attempts_ = 0;      // transmissions tried for the in-flight frame
  bool waiting_ = false;  // a backoff retry or link completion is pending

  std::uint64_t seq_ = 0;
  Stats stats_;
  sim::Simulator::PeriodicHandle flusher_;
  bool started_ = false;
  /// Guards scheduled callbacks (flush ticks, backoff retries, link
  /// completions) against firing after this shipper is destroyed.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

}  // namespace vdap::telemetry::fleet
