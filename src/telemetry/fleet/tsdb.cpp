#include "telemetry/fleet/tsdb.hpp"

#include <algorithm>
#include <cmath>

namespace vdap::telemetry::fleet {

namespace {

sim::SimTime align(sim::SimTime at, sim::SimDuration interval) {
  return (at / interval) * interval;
}

void bucket_add(TimeSeriesStore::Bucket& b, double value) {
  if (b.count == 0) {
    b.min = value;
    b.max = value;
  } else {
    b.min = std::min(b.min, value);
    b.max = std::max(b.max, value);
  }
  ++b.count;
  b.sum += value;
  b.sketch.add(value);
}

void bucket_absorb(TimeSeriesStore::Bucket& into,
                   const TimeSeriesStore::Bucket& from) {
  if (from.count == 0) return;
  if (into.count == 0) {
    into.min = from.min;
    into.max = from.max;
  } else {
    into.min = std::min(into.min, from.min);
    into.max = std::max(into.max, from.max);
  }
  into.count += from.count;
  into.sum += from.sum;
  into.sketch.merge(from.sketch);
}

}  // namespace

TimeSeriesStore::TimeSeriesStore(Options options) : opts_(options) {
  // Sanitize so a zero/descending configuration cannot divide by zero or
  // livelock the cascade.
  opts_.raw_interval = std::max<sim::SimDuration>(opts_.raw_interval, 1);
  opts_.mid_interval = std::max(opts_.mid_interval, opts_.raw_interval);
  opts_.coarse_interval = std::max(opts_.coarse_interval, opts_.mid_interval);
  opts_.raw_buckets = std::max<std::size_t>(opts_.raw_buckets, 1);
  opts_.mid_buckets = std::max<std::size_t>(opts_.mid_buckets, 1);
  opts_.coarse_buckets = std::max<std::size_t>(opts_.coarse_buckets, 1);
}

sim::SimDuration TimeSeriesStore::interval(Tier tier) const {
  switch (tier) {
    case Tier::kRaw: return opts_.raw_interval;
    case Tier::kMid: return opts_.mid_interval;
    case Tier::kCoarse: return opts_.coarse_interval;
  }
  return opts_.raw_interval;
}

std::size_t TimeSeriesStore::budget(Tier tier) const {
  switch (tier) {
    case Tier::kRaw: return opts_.raw_buckets;
    case Tier::kMid: return opts_.mid_buckets;
    case Tier::kCoarse: return opts_.coarse_buckets;
  }
  return opts_.raw_buckets;
}

TimeSeriesStore::Bucket& TimeSeriesStore::bucket_for(Series& s, Tier tier,
                                                     sim::SimTime at) {
  std::deque<Bucket>& tq = s.tiers[static_cast<std::size_t>(tier)];
  const sim::SimTime start = align(at, interval(tier));
  auto it = std::lower_bound(
      tq.begin(), tq.end(), start,
      [](const Bucket& b, sim::SimTime t) { return b.start < t; });
  if (it != tq.end() && it->start == start) return *it;
  Bucket fresh;
  fresh.start = start;
  fresh.sketch.set_sample_cap(opts_.sketch_cap);
  return *tq.insert(it, std::move(fresh));
}

void TimeSeriesStore::compact(Series& s) {
  static constexpr Tier kOrder[kTierCount] = {Tier::kRaw, Tier::kMid,
                                              Tier::kCoarse};
  for (std::size_t i = 0; i < kTierCount; ++i) {
    std::deque<Bucket>& tq = s.tiers[static_cast<std::size_t>(kOrder[i])];
    while (tq.size() > budget(kOrder[i])) {
      Bucket oldest = std::move(tq.front());
      tq.pop_front();
      if (i + 1 < kTierCount) {
        bucket_absorb(bucket_for(s, kOrder[i + 1], oldest.start), oldest);
      } else {
        ++s.evicted_buckets;
        s.evicted_samples += oldest.count;
      }
    }
  }
}

bool TimeSeriesStore::observe(const std::string& series, sim::SimTime at,
                              double value) {
  if (!std::isfinite(value) || at < 0) {
    ++rejected_;
    return false;
  }
  Series& s = series_[series];
  bucket_add(bucket_for(s, Tier::kRaw, at), value);
  ++s.total;
  s.sum += value;
  s.latest = std::max(s.latest, at);
  compact(s);
  return true;
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

bool TimeSeriesStore::has(const std::string& series) const {
  return series_.count(series) > 0;
}

std::size_t TimeSeriesStore::total_count(const std::string& series) const {
  auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.total;
}

double TimeSeriesStore::total_sum(const std::string& series) const {
  auto it = series_.find(series);
  return it == series_.end() ? 0.0 : it->second.sum;
}

sim::SimTime TimeSeriesStore::latest(const std::string& series) const {
  auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.latest;
}

const std::deque<TimeSeriesStore::Bucket>* TimeSeriesStore::buckets(
    const std::string& series, Tier tier) const {
  auto it = series_.find(series);
  if (it == series_.end()) return nullptr;
  return &it->second.tiers[static_cast<std::size_t>(tier)];
}

std::size_t TimeSeriesStore::evicted_buckets(const std::string& series) const {
  auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.evicted_buckets;
}

std::size_t TimeSeriesStore::evicted_samples(const std::string& series) const {
  auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.evicted_samples;
}

TimeSeriesStore::RangeStats TimeSeriesStore::summarize(
    const std::string& series, sim::SimTime from, sim::SimTime to) const {
  RangeStats out;
  auto it = series_.find(series);
  if (it == series_.end() || from > to) return out;
  for (std::size_t t = 0; t < kTierCount; ++t) {
    const sim::SimDuration iv = interval(static_cast<Tier>(t));
    for (const Bucket& b : it->second.tiers[t]) {
      if (b.start + iv <= from) continue;
      if (b.start > to) break;
      if (out.count == 0) {
        out.min = b.min;
        out.max = b.max;
      } else {
        out.min = std::min(out.min, b.min);
        out.max = std::max(out.max, b.max);
      }
      out.count += b.count;
      out.sum += b.sum;
    }
  }
  return out;
}

util::Histogram TimeSeriesStore::sketch(const std::string& series,
                                        sim::SimTime from,
                                        sim::SimTime to) const {
  util::Histogram out;
  // The merged sketch covers many buckets; give it more headroom than one
  // bucket's cap but keep it bounded.
  out.set_sample_cap(opts_.sketch_cap * 16);
  auto it = series_.find(series);
  if (it == series_.end() || from > to) return out;
  for (std::size_t t = 0; t < kTierCount; ++t) {
    const sim::SimDuration iv = interval(static_cast<Tier>(t));
    for (const Bucket& b : it->second.tiers[t]) {
      if (b.start + iv <= from) continue;
      if (b.start > to) break;
      out.merge(b.sketch);
    }
  }
  return out;
}

double TimeSeriesStore::quantile(const std::string& series, double q) const {
  return sketch(series, 0, sim::kTimeMax).quantile(q);
}

}  // namespace vdap::telemetry::fleet
