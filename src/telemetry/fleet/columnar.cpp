#include "telemetry/fleet/columnar.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace vdap::telemetry::fleet {

// Block format (all little-endian):
//
//   "VCB1"                      4-byte magic
//   u32  count                  samples in the block
//   varint × count              zigzag(time[i] − time[i−1]), time[−1] = 0
//                               (deltas may be negative: the aggregator
//                               tolerates reordered frames)
//   f64  × count                raw IEEE-754 values
//   u64  checksum               FNV-1a over every byte after the magic
//
// Varints are LEB128 (7 data bits per byte, high bit = continue), at most
// 10 bytes each. The decoder never trusts a declared length: `count` is
// bounds-checked against the available bytes before any allocation, every
// varint read is range-checked, and the trailing checksum must match
// exactly with no bytes left over.

namespace {

constexpr char kMagic[4] = {'V', 'C', 'B', '1'};
constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t zigzag(std::int64_t v) {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

std::int64_t unzigzag(std::uint64_t u) {
  return static_cast<std::int64_t>((u >> 1) ^ (~(u & 1) + 1));
}

void put_u32(std::string* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::string* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_varint(std::string* out, std::uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7F) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

void put_f64(std::string* out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

bool get_u32(std::string_view bytes, std::size_t* pos, std::uint32_t* out) {
  if (bytes.size() - *pos < 4) return false;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(bytes[*pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  *pos += 4;
  *out = v;
  return true;
}

bool get_u64(std::string_view bytes, std::size_t* pos, std::uint64_t* out) {
  if (bytes.size() - *pos < 8) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(bytes[*pos + static_cast<std::size_t>(i)]))
         << (8 * i);
  }
  *pos += 8;
  *out = v;
  return true;
}

bool get_varint(std::string_view bytes, std::size_t* pos, std::uint64_t* out) {
  std::uint64_t v = 0;
  for (int shift = 0; shift < 64; shift += 7) {
    if (*pos >= bytes.size()) return false;
    const unsigned char b = static_cast<unsigned char>(bytes[(*pos)++]);
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) {
      // Reject non-canonical overlong encodings of the final byte.
      if (shift == 63 && b > 1) return false;
      *out = v;
      return true;
    }
  }
  return false;  // 11th continuation byte: not a valid 64-bit varint
}

}  // namespace

void columnar_encode_to(const ColumnData& cols, std::string* out) {
  out->append(kMagic, sizeof(kMagic));
  const std::size_t payload_start = out->size();
  put_u32(out, static_cast<std::uint32_t>(cols.size()));
  sim::SimTime prev = 0;
  for (sim::SimTime t : cols.times) {
    put_varint(out, zigzag(t - prev));
    prev = t;
  }
  for (double v : cols.values) put_f64(out, v);
  put_u64(out, fnv1a(std::string_view(*out).substr(payload_start)));
}

std::string columnar_encode(const ColumnData& cols) {
  std::string out;
  columnar_encode_to(cols, &out);
  return out;
}

bool columnar_decode(std::string_view bytes, ColumnData* out,
                     std::string* error) {
  auto fail = [error](const char* why) {
    if (error != nullptr) *error = why;
    return false;
  };
  out->clear();
  if (bytes.size() < sizeof(kMagic) + 4 + 8) return fail("block too short");
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail("bad magic");
  }
  std::size_t pos = sizeof(kMagic);
  const std::size_t payload_start = pos;
  std::uint32_t count = 0;
  if (!get_u32(bytes, &pos, &count)) return fail("truncated count");
  // Every sample needs at least one varint byte and exactly eight value
  // bytes, plus the trailing checksum — bound `count` before any
  // allocation so a hostile header cannot force a giant reserve.
  const std::size_t remaining = bytes.size() - pos;
  if (remaining < 8 || static_cast<std::uint64_t>(count) * 9 > remaining - 8) {
    return fail("count exceeds payload");
  }
  out->times.reserve(count);
  out->values.reserve(count);
  sim::SimTime prev = 0;
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t z = 0;
    if (!get_varint(bytes, &pos, &z)) return fail("malformed time varint");
    prev += unzigzag(z);
    out->times.push_back(prev);
  }
  if (bytes.size() - pos != static_cast<std::size_t>(count) * 8 + 8) {
    return fail("value column size mismatch");
  }
  for (std::uint32_t i = 0; i < count; ++i) {
    std::uint64_t bits = 0;
    get_u64(bytes, &pos, &bits);  // length checked above
    double v;
    std::memcpy(&v, &bits, sizeof(v));
    out->values.push_back(v);
  }
  std::uint64_t declared = 0;
  get_u64(bytes, &pos, &declared);
  const std::uint64_t actual =
      fnv1a(bytes.substr(payload_start, bytes.size() - 8 - payload_start));
  if (declared != actual) return fail("checksum mismatch");
  return true;
}

ColumnarSeries::ColumnarSeries(const Options& options) : opts_(options) {
  opts_.block_samples = std::max<std::size_t>(opts_.block_samples, 2);
  opts_.max_blocks = std::max<std::size_t>(opts_.max_blocks, 1);
  active_sketch_.set_sample_cap(opts_.sketch_cap);
}

void ColumnarSeries::append(sim::SimTime at, double value, BlockPool* pool) {
  if (total_count_ == 0) {
    total_min_ = total_max_ = value;
  } else {
    total_min_ = std::min(total_min_, value);
    total_max_ = std::max(total_max_, value);
  }
  ++total_count_;
  total_sum_ += value;
  latest_ = std::max(latest_, at);
  active_.times.push_back(at);
  active_.values.push_back(value);
  if (active_.size() >= opts_.block_samples) seal(pool);
}

void ColumnarSeries::seal(BlockPool* pool) {
  if (active_.empty()) return;
  Sealed s;
  s.count = active_.size();
  s.min_time = *std::min_element(active_.times.begin(), active_.times.end());
  s.max_time = *std::max_element(active_.times.begin(), active_.times.end());
  s.min = *std::min_element(active_.values.begin(), active_.values.end());
  s.max = *std::max_element(active_.values.begin(), active_.values.end());
  for (double v : active_.values) s.sum += v;
  s.sketch.set_sample_cap(opts_.sketch_cap);
  s.sketch.add_bulk(active_.values.data(), active_.values.size());
  s.bytes = pool != nullptr ? pool->acquire_bytes() : std::string{};
  columnar_encode_to(active_, &s.bytes);
  encoded_bytes_ += s.bytes.size();
  sealed_.push_back(std::move(s));
  if (pool != nullptr) {
    pool->release(std::move(active_));
    active_ = pool->acquire();
  } else {
    active_.clear();
  }
  while (sealed_.size() > opts_.max_blocks) {
    ++evicted_blocks_;
    evicted_samples_ += sealed_.front().count;
    encoded_bytes_ -= sealed_.front().bytes.size();
    if (pool != nullptr) pool->release_bytes(std::move(sealed_.front().bytes));
    sealed_.pop_front();
  }
}

ColumnarSeries::RangeAgg ColumnarSeries::range(sim::SimTime from,
                                               sim::SimTime to) const {
  RangeAgg agg;
  if (from > to) return agg;
  auto fold = [&agg](double v) {
    if (agg.count == 0) {
      agg.min = agg.max = v;
    } else {
      agg.min = std::min(agg.min, v);
      agg.max = std::max(agg.max, v);
    }
    ++agg.count;
    agg.sum += v;
  };
  ColumnData scratch;
  for (const Sealed& s : sealed_) {
    if (s.max_time < from || s.min_time > to) continue;
    if (s.min_time >= from && s.max_time <= to) {
      // Fully covered: the summary is the exact answer.
      if (agg.count == 0) {
        agg.min = s.min;
        agg.max = s.max;
      } else {
        agg.min = std::min(agg.min, s.min);
        agg.max = std::max(agg.max, s.max);
      }
      agg.count += s.count;
      agg.sum += s.sum;
      continue;
    }
    // Partially covered: decode and scan. A sealed block always decodes
    // (we encoded it); treat failure as an empty block rather than UB.
    if (!columnar_decode(s.bytes, &scratch)) continue;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      if (scratch.times[i] >= from && scratch.times[i] <= to) {
        fold(scratch.values[i]);
      }
    }
  }
  for (std::size_t i = 0; i < active_.size(); ++i) {
    if (active_.times[i] >= from && active_.times[i] <= to) {
      fold(active_.values[i]);
    }
  }
  return agg;
}

util::Histogram ColumnarSeries::sketch(sim::SimTime from,
                                       sim::SimTime to) const {
  util::Histogram out;
  out.set_sample_cap(opts_.sketch_cap);
  if (from > to) return out;
  for (const Sealed& s : sealed_) {
    if (s.max_time < from || s.min_time > to) continue;
    out.merge(s.sketch);
  }
  bool active_hits = false;
  for (std::size_t i = 0; i < active_.size() && !active_hits; ++i) {
    active_hits = active_.times[i] >= from && active_.times[i] <= to;
  }
  if (active_hits) {
    util::Histogram a;
    a.set_sample_cap(opts_.sketch_cap);
    a.add_bulk(active_.values.data(), active_.values.size());
    out.merge(a);
  }
  return out;
}

std::optional<std::pair<sim::SimTime, double>> ColumnarSeries::last_at_or_before(
    sim::SimTime t) const {
  std::optional<std::pair<sim::SimTime, double>> best;
  // Later-appended samples win timestamp ties (>=): "the last thing the
  // vehicle reported at or before t".
  auto consider = [&best, t](sim::SimTime at, double v) {
    if (at > t) return;
    if (!best.has_value() || at >= best->first) best = {at, v};
  };
  ColumnData scratch;
  for (const Sealed& s : sealed_) {
    if (s.min_time > t) continue;
    // Blocks strictly older than the current best cannot improve it;
    // equal-time blocks must still be scanned for the tie rule above.
    if (best.has_value() && s.max_time < best->first) continue;
    if (!columnar_decode(s.bytes, &scratch)) continue;
    for (std::size_t i = 0; i < scratch.size(); ++i) {
      consider(scratch.times[i], scratch.values[i]);
    }
  }
  for (std::size_t i = 0; i < active_.size(); ++i) {
    consider(active_.times[i], active_.values[i]);
  }
  return best;
}

bool ColumnarStore::observe(const std::string& series, sim::SimTime at,
                            double value) {
  if (!std::isfinite(value) || at < 0) {
    ++rejected_;
    return false;
  }
  auto it = series_.find(series);
  if (it == series_.end()) {
    it = series_.emplace(series, ColumnarSeries(opts_)).first;
  }
  it->second.append(at, value, pool_);
  return true;
}

std::vector<std::string> ColumnarStore::names() const {
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

const ColumnarSeries* ColumnarStore::series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : &it->second;
}

std::size_t ColumnarStore::total_count(const std::string& series) const {
  auto it = series_.find(series);
  return it == series_.end() ? 0 : it->second.total_count();
}

double ColumnarStore::total_sum(const std::string& series) const {
  auto it = series_.find(series);
  return it == series_.end() ? 0.0 : it->second.total_sum();
}

}  // namespace vdap::telemetry::fleet
