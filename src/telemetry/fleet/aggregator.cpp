#include "telemetry/fleet/aggregator.hpp"

#include <algorithm>
#include <cmath>

#include "util/stats.hpp"

namespace vdap::telemetry::fleet {

namespace {

double median_of(std::vector<double> values) {
  // values non-empty, by caller contract.
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

bool is_breach_kind(const std::string& kind) {
  return kind.find("breach") != std::string::npos;
}

}  // namespace

FleetAggregator::FleetAggregator(Options options)
    : opts_(options), fleet_(options.store) {
  opts_.min_vehicles = std::max<std::size_t>(opts_.min_vehicles, 2);
  opts_.seq_window = std::max<std::size_t>(opts_.seq_window, 16);
  opts_.detect_window = std::max<sim::SimDuration>(opts_.detect_window, 1);
  opts_.detect_period = std::max<sim::SimDuration>(opts_.detect_period, 1);
}

bool FleetAggregator::ingest(const WireFrame& frame) {
  Vehicle* v = nullptr;
  if (auto it = vehicles_.find(frame.vehicle); it != vehicles_.end()) {
    v = &it->second;
  } else {
    v = &vehicles_.emplace(frame.vehicle, Vehicle{TimeSeriesStore(opts_.store)})
             .first->second;
  }

  // Duplicate / reorder accounting by sequence number. Sequence numbers
  // older than the remembered window are treated as duplicates: the
  // shipper retries in order, so anything that far behind has been seen.
  const std::uint64_t floor_seq =
      v->max_seq > opts_.seq_window ? v->max_seq - opts_.seq_window : 0;
  if (frame.seq <= floor_seq || v->seen.count(frame.seq) > 0) {
    ++v->duplicates;
    ++duplicates_;
    return false;
  }
  if (frame.seq < v->max_seq) {
    ++v->reordered;
    ++reordered_;
  }
  v->seen.insert(frame.seq);
  v->max_seq = std::max(v->max_seq, frame.seq);
  while (!v->seen.empty() &&
         *v->seen.begin() + opts_.seq_window < v->max_seq) {
    v->seen.erase(v->seen.begin());
  }
  ++v->frames;
  ++frames_;
  watermark_ = std::max(watermark_, frame.created);

  for (const auto& [name, delta] : frame.counters) v->counters[name] += delta;
  for (const auto& [name, value] : frame.gauges) v->gauges[name] = value;
  for (const WireHealthEvent& ev : frame.events) {
    ++v->health_events;
    if (is_breach_kind(ev.kind)) ++v->breaches;
  }
  for (const auto& [metric, samples] : frame.samples) {
    for (const WireSample& s : samples) {
      v->store.observe(metric, s.first, s.second);
      fleet_.observe(metric, s.first, s.second);
      watermark_ = std::max(watermark_, s.first);
    }
  }
  for (const auto& [metric, samples] : frame.samples) {
    if (samples.empty()) continue;
    auto last = last_detect_.find(metric);
    if (last != last_detect_.end() &&
        watermark_ < last->second + opts_.detect_period) {
      continue;
    }
    last_detect_[metric] = watermark_;
    detect(metric);
  }
  return true;
}

bool FleetAggregator::ingest_wire(std::string_view line, std::string* error) {
  std::optional<WireFrame> frame = wire_decode(line, error);
  if (!frame.has_value()) {
    ++decode_errors_;
    return false;
  }
  return ingest(*frame);
}

std::size_t FleetAggregator::ingest_batch(
    const std::vector<std::string_view>& lines) {
  if (lines.empty()) return 0;
  ++batches_;
  std::size_t accepted = 0;
  for (std::string_view line : lines) {
    if (ingest_wire(line)) ++accepted;
  }
  return accepted;
}

void FleetAggregator::detect(const std::string& metric) {
  const sim::SimTime from =
      watermark_ > opts_.detect_window ? watermark_ - opts_.detect_window : 0;
  std::vector<std::pair<const std::string*, double>> means;
  means.reserve(vehicles_.size());
  for (const auto& [name, v] : vehicles_) {
    TimeSeriesStore::RangeStats rs = v.store.summarize(metric, from, watermark_);
    if (rs.count > 0) means.emplace_back(&name, rs.mean());
  }
  if (means.size() < opts_.min_vehicles) return;

  std::vector<double> values;
  values.reserve(means.size());
  for (const auto& [name, m] : means) values.push_back(m);
  const double med = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double x : values) deviations.push_back(std::abs(x - med));
  double mad = median_of(std::move(deviations));
  // Floor the MAD so a near-uniform fleet (MAD → 0) cannot produce
  // unbounded scores from numeric dust.
  mad = std::max(mad, 0.005 * std::max(std::abs(med), 1e-6));

  for (const auto& [name, x] : means) {
    const double score = 0.6745 * std::abs(x - med) / mad;
    const std::string key = metric + "|" + *name;
    const bool flagged = active_.count(key) > 0;
    if (!flagged && score >= opts_.mad_threshold) {
      active_.insert(key);
      FleetAnomaly a;
      a.at = watermark_;
      a.vehicle = *name;
      a.metric = metric;
      a.value = x;
      a.fleet_median = med;
      a.score = score;
      anomalies_.push_back(a);
      if (sink_) sink_(anomalies_.back());
    } else if (flagged && score < opts_.mad_threshold * opts_.clear_factor) {
      active_.erase(key);
    }
  }
}

std::vector<std::string> FleetAggregator::anomalous_vehicles() const {
  std::vector<std::string> out;
  for (const FleetAnomaly& a : anomalies_) {
    if (std::find(out.begin(), out.end(), a.vehicle) == out.end()) {
      out.push_back(a.vehicle);
    }
  }
  return out;
}

std::vector<std::string> FleetAggregator::vehicles() const {
  std::vector<std::string> out;
  out.reserve(vehicles_.size());
  for (const auto& [name, v] : vehicles_) out.push_back(name);
  return out;
}

const TimeSeriesStore* FleetAggregator::vehicle_store(
    const std::string& vehicle) const {
  auto it = vehicles_.find(vehicle);
  return it == vehicles_.end() ? nullptr : &it->second.store;
}

std::int64_t FleetAggregator::counter_total(const std::string& vehicle,
                                            const std::string& name) const {
  auto it = vehicles_.find(vehicle);
  if (it == vehicles_.end()) return 0;
  auto c = it->second.counters.find(name);
  return c == it->second.counters.end() ? 0 : c->second;
}

std::uint64_t FleetAggregator::lost_frames() const {
  std::uint64_t lost = 0;
  for (const auto& [name, v] : vehicles_) {
    if (v.max_seq > v.frames) lost += v.max_seq - v.frames;
  }
  return lost;
}

std::string FleetAggregator::rollup_table() const {
  util::TextTable table("fleet metric rollup");
  table.set_header({"metric", "vehicles", "count", "mean", "p50", "p95",
                    "p99", "max", "outliers"});
  for (const std::string& metric : fleet_.names()) {
    std::size_t reporting = 0;
    for (const auto& [name, v] : vehicles_) {
      if (v.store.has(metric)) ++reporting;
    }
    std::size_t outliers = 0;
    for (const std::string& key : active_) {
      if (key.compare(0, metric.size() + 1, metric + "|") == 0) ++outliers;
    }
    util::Histogram sketch = fleet_.sketch(metric, 0, sim::kTimeMax);
    const std::size_t count = fleet_.total_count(metric);
    const double mean =
        count > 0 ? fleet_.total_sum(metric) / static_cast<double>(count) : 0.0;
    table.add_row({metric, std::to_string(reporting), std::to_string(count),
                   util::TextTable::num(mean), util::TextTable::num(sketch.p50()),
                   util::TextTable::num(sketch.p95()),
                   util::TextTable::num(sketch.p99()),
                   util::TextTable::num(sketch.max()),
                   std::to_string(outliers)});
  }
  return table.to_string();
}

std::string FleetAggregator::anomaly_table() const {
  util::TextTable table("fleet anomalies");
  table.set_header({"t(s)", "vehicle", "metric", "value", "fleet p50",
                    "score"});
  for (const FleetAnomaly& a : anomalies_) {
    table.add_row({util::TextTable::num(sim::to_seconds(a.at)), a.vehicle,
                   a.metric, util::TextTable::num(a.value),
                   util::TextTable::num(a.fleet_median),
                   util::TextTable::num(a.score, 1)});
  }
  return table.to_string();
}

std::string FleetAggregator::vehicle_table() const {
  util::TextTable table("fleet vehicles");
  table.set_header({"vehicle", "frames", "dup", "reorder", "lost", "health ev",
                    "breaches"});
  for (const auto& [name, v] : vehicles_) {
    const std::uint64_t lost = v.max_seq > v.frames ? v.max_seq - v.frames : 0;
    table.add_row({name, std::to_string(v.frames), std::to_string(v.duplicates),
                   std::to_string(v.reordered), std::to_string(lost),
                   std::to_string(v.health_events),
                   std::to_string(v.breaches)});
  }
  return table.to_string();
}

}  // namespace vdap::telemetry::fleet
