// Sharded columnar ingest backend (DESIGN.md §6g): the real TSDB behind
// the fleet's cloud aggregation point, replacing the single-threaded
// FleetAggregator on the hot path (the old aggregator remains as the
// oracle the `ingest` test suite compares against).
//
// Architecture: K IngestShards, each single-threaded and lock-free —
// per-vehicle ColumnarStores (encoded sample blocks + streaming
// sketches), the FleetAggregator's exact dedup/reorder/loss accounting,
// and O(1)-per-sample window rings that maintain per-(vehicle, metric)
// trailing-window means at detect_period granularity. A vehicle maps to
// exactly one shard: FNV-1a(vehicle) % K in standalone mode, or any
// fixed external mapping in hosted mode (core::run_fleet homes a
// vehicle's ingest on its sim shard). All mapping-sensitive state stays
// inside the shard; everything observable — tables, queries, anomalies,
// accounting — is merged across shards in vehicle-name or metric-name
// order, so results are byte-identical across shard AND thread counts.
//
// Anomaly detection is unthrottled: the PR-4 O(vehicles²) per-frame MAD
// pass became per-frame O(1) ring maintenance plus one O(V log V) MAD
// pass per dirty metric at each barrier, so the detect-period ingest
// throttle is gone (detect_period now only sets the ring resolution).
// Detection runs on the coordinator at barriers with the shards
// quiesced, over per-vehicle means gathered from the rings and sorted by
// vehicle name — the same modified z-score math, MAD floor and
// hysteresis as the reference aggregator.
//
// Threading contract (ThreadSanitizer-checked by the `ingest` suite):
//   * ingest_batch() partitions lines by vehicle key and runs the shards
//     on an internal ThreadPool; the pool's barrier gives happens-before
//     between shard work and everything after.
//   * Hosted callers invoke ingest_on_shard(s, line) only from code
//     running shard s (e.g. a deliver callback on its sim shard) and
//     barrier() only with every shard quiesced (an epoch barrier).
//   * The process-wide telemetry registry is touched only at barriers,
//     on the coordinating thread.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "sim/thread_pool.hpp"
#include "telemetry/fleet/aggregator.hpp"
#include "telemetry/fleet/columnar.hpp"
#include "telemetry/fleet/query.hpp"
#include "telemetry/fleet/wire.hpp"

namespace vdap::telemetry::fleet {

struct IngestOptions {
  /// Ingest shards (vehicle-hash partitions).
  int shards = 1;
  /// Worker threads driving standalone ingest_batch() (clamped to
  /// [1, shards]); hosted mode runs on the caller's threads instead.
  int threads = 1;
  /// Per-(vehicle, metric) columnar series knobs.
  ColumnarSeries::Options block;
  /// MAD detection — same contract as FleetAggregator::Options.
  double mad_threshold = 3.5;
  double clear_factor = 0.7;
  std::size_t min_vehicles = 3;
  sim::SimDuration detect_window = sim::seconds(15);
  /// Window-ring slot width (NOT a detection throttle any more —
  /// detection runs at every barrier whose watermark advanced).
  sim::SimDuration detect_period = sim::seconds(1);
  /// Metric-name prefixes MAD detection skips. Location fixes are lookup
  /// data for `near` queries — an outlying coordinate is geometry, not
  /// sickness.
  std::vector<std::string> detect_exclude = {"loc."};
  std::size_t seq_window = 4096;
};

/// One single-threaded ingest partition. Hot-path methods (ingest*) may
/// only run on the shard's owning thread; everything else only with the
/// shard quiesced.
class IngestShard {
 public:
  /// Streaming (count, sum) ring at detect_period granularity covering
  /// the trailing detect window — O(1) per sample, O(window/period) per
  /// mean query, no per-detection store scan.
  struct WindowRing {
    std::vector<std::pair<std::uint64_t, double>> slots;
    std::int64_t max_slot = -1;  // newest slot index seen (-1: empty)
  };

  struct Vehicle {
    ColumnarStore store;
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::map<std::string, WindowRing> rings;
    std::uint64_t frames = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t reordered = 0;
    std::uint64_t max_seq = 0;
    std::set<std::uint64_t> seen;
    std::uint64_t health_events = 0;
    std::uint64_t breaches = 0;
  };

  explicit IngestShard(const IngestOptions& options);

  /// Decodes and ingests one wire line (hot path). Returns false for
  /// decode errors (counted, diagnostic in *error) and duplicates.
  bool ingest_line(std::string_view line, std::string* error = nullptr);
  /// Ingests one decoded frame. Returns false for duplicates.
  bool ingest(const WireFrame& frame);

  // --- barrier-side (shard quiesced) ---------------------------------
  sim::SimTime watermark() const { return watermark_; }
  /// Metrics that received samples since the last take_dirty().
  std::set<std::string> take_dirty();
  /// Appends (vehicle, trailing-window mean) for every vehicle of this
  /// shard reporting `metric` within [from, to] (ring-slot granularity).
  void collect_means(const std::string& metric, sim::SimTime from,
                     sim::SimTime to,
                     std::vector<std::pair<std::string, double>>* out) const;

  const std::map<std::string, Vehicle>& vehicles() const { return vehicles_; }
  const BlockPool& pool() const { return pool_; }

  std::uint64_t frames_ingested() const { return frames_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t reordered() const { return reordered_; }
  std::uint64_t decode_errors() const { return decode_errors_; }
  std::uint64_t samples_ingested() const { return samples_; }
  std::uint64_t samples_rejected() const;
  /// Samples too old for their window ring (still stored columnar-side).
  std::uint64_t ring_late() const { return ring_late_; }
  std::uint64_t lost_frames() const;

 private:
  void ring_add(WindowRing* ring, sim::SimTime at, double value);

  IngestOptions opts_;
  std::size_t ring_span_ = 0;  // slots per ring
  BlockPool pool_;
  std::map<std::string, Vehicle> vehicles_;
  std::set<std::string> dirty_;
  sim::SimTime watermark_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t decode_errors_ = 0;
  std::uint64_t samples_ = 0;
  std::uint64_t ring_late_ = 0;
};

/// The sharded backend: owns the shards, the standalone thread pool, and
/// the barrier-time detection/merge state. See the header comment for
/// the threading contract.
class ShardedIngestBackend {
 public:
  ShardedIngestBackend() : ShardedIngestBackend(IngestOptions{}) {}
  explicit ShardedIngestBackend(IngestOptions options);

  int shards() const { return static_cast<int>(shards_.size()); }
  int threads() const;

  /// Standalone routing contract: FNV-1a over the vehicle key, modulo
  /// the shard count (DESIGN.md §6g).
  int shard_of(std::string_view vehicle_key) const;

  /// Standalone mode: partitions `lines` by wire_peek_vehicle() key,
  /// ingests each partition on its shard (in parallel when configured
  /// with threads > 1), then runs a barrier. Returns frames accepted.
  std::size_t ingest_batch(const std::vector<std::string_view>& lines);
  /// Non-empty batches ingested (parity with FleetAggregator::batches).
  std::uint64_t batches() const { return batches_; }

  /// Convenience single-line ingest + no barrier (replay/CLI path):
  /// routes via shard_of(wire_peek_vehicle(line)).
  bool ingest_line(std::string_view line, std::string* error = nullptr);

  // --- hosted mode -----------------------------------------------------
  /// Ingest one line on shard `shard`; call only from code running that
  /// shard (see threading contract). Any fixed vehicle→shard mapping is
  /// valid as long as each vehicle always lands on the same shard.
  bool ingest_on_shard(int shard, std::string_view line);
  IngestShard& shard(int i) { return *shards_[static_cast<std::size_t>(i)]; }
  const IngestShard& shard(int i) const {
    return *shards_[static_cast<std::size_t>(i)];
  }

  /// Merge watermarks and run unthrottled MAD detection over every dirty
  /// metric; call with all shards quiesced (standalone ingest_batch does
  /// this itself). Mirrors ingest counters into the telemetry registry
  /// (coordinator thread only).
  void barrier();

  void set_anomaly_sink(std::function<void(const FleetAnomaly&)> sink) {
    sink_ = std::move(sink);
  }
  const std::vector<FleetAnomaly>& anomalies() const { return anomalies_; }
  std::vector<std::string> anomalous_vehicles() const;

  std::vector<std::string> vehicles() const;
  std::int64_t counter_total(const std::string& vehicle,
                             const std::string& name) const;

  std::uint64_t frames_ingested() const;
  std::uint64_t duplicates() const;
  std::uint64_t reordered() const;
  std::uint64_t decode_errors() const;
  std::uint64_t lost_frames() const;
  std::uint64_t samples_ingested() const;
  sim::SimTime watermark() const { return watermark_; }
  std::uint64_t detect_passes() const { return detect_passes_; }
  /// Vehicle window-means examined across all detection passes — the
  /// counter the O(V)-cost regression test pins.
  std::uint64_t detect_scanned() const { return detect_scanned_; }

  /// Backpressure watermarks for the sharded runtime report, maintained at
  /// each barrier: the most frames shard `i` decoded between two barriers,
  /// and the farthest (in µs) its watermark ever trailed the merged one.
  std::uint64_t backlog_peak(int i) const {
    return barrier_stats_[static_cast<std::size_t>(i)].backlog_peak;
  }
  std::int64_t lag_us_peak(int i) const {
    return barrier_stats_[static_cast<std::size_t>(i)].lag_us_peak;
  }

  /// Pool + block accounting summed over shards (bench evidence).
  struct PoolStats {
    std::uint64_t column_allocs = 0;
    std::uint64_t column_reuses = 0;
    std::uint64_t buffer_allocs = 0;
    std::uint64_t buffer_reuses = 0;
    std::uint64_t sealed_blocks = 0;
    std::uint64_t evicted_blocks = 0;
    std::uint64_t encoded_bytes = 0;
  };
  PoolStats pool_stats() const;

  /// Report tables, same shapes as FleetAggregator's (deterministic per
  /// ingest sequence, shard/thread-count invariant).
  std::string rollup_table() const;
  std::string anomaly_table() const;
  std::string vehicle_table() const;

  /// Executes one query against the fused store (shards quiesced).
  QueryResult run_query(const Query& query) const;
  /// Parse + run + render; on parse failure returns "" with *error set.
  std::string run_query_text(std::string_view text,
                             std::string* error = nullptr) const;

 private:
  struct MirrorState {
    std::uint64_t frames = 0;
    std::uint64_t samples = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t decode_errors = 0;
    std::uint64_t passes = 0;
    std::uint64_t scanned = 0;
  };
  struct BarrierStats {
    std::uint64_t frames_last = 0;  // frames_ingested at the last barrier
    std::uint64_t backlog_peak = 0;
    std::int64_t lag_us_peak = 0;
  };

  void detect(const std::string& metric);
  void mirror_metrics();
  /// (name, vehicle) pairs across shards, sorted by vehicle name.
  std::vector<std::pair<const std::string*, const IngestShard::Vehicle*>>
  sorted_vehicles() const;

  IngestOptions opts_;
  std::vector<std::unique_ptr<IngestShard>> shards_;
  std::unique_ptr<sim::ThreadPool> pool_;
  std::function<void(const FleetAnomaly&)> sink_;
  std::vector<FleetAnomaly> anomalies_;
  std::set<std::string> active_;  // metric + "|" + vehicle (hysteresis)
  sim::SimTime watermark_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t detect_passes_ = 0;
  std::uint64_t detect_scanned_ = 0;
  MirrorState mirrored_;
  std::vector<BarrierStats> barrier_stats_;  // one per shard
};

}  // namespace vdap::telemetry::fleet
