#include "telemetry/fleet/shipper.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/prof/profiler.hpp"
#include "telemetry/telemetry.hpp"

namespace vdap::telemetry::fleet {

namespace {

net::LinkSpec shipping_spec(const net::Topology& topo, net::Tier tier,
                            const std::string& link_name) {
  const net::PathSpec& path = topo.uplink(tier);
  if (!path.empty()) return path.collapse(link_name);
  // kOnBoard (or an empty path): a loopback-ish wired link so the shipper
  // still works in single-box setups.
  net::LinkSpec spec;
  spec.name = link_name;
  spec.kind = net::LinkKind::kWired;
  spec.bandwidth_mbps = 1000.0;
  spec.latency = sim::usec(50);
  return spec;
}

}  // namespace

TelemetryShipper::TelemetryShipper(sim::Simulator& sim, std::string vehicle,
                                   net::Topology& topo, DeliverFn deliver,
                                   Options options)
    : sim_(sim), vehicle_(std::move(vehicle)), topo_(topo),
      deliver_(std::move(deliver)), opts_(options) {
  opts_.max_queue = std::max<std::size_t>(opts_.max_queue, 1);
  opts_.max_attempts = std::max(opts_.max_attempts, 1);
  opts_.flush_period = std::max<sim::SimDuration>(opts_.flush_period, 1);
  link_ = std::make_unique<net::Link>(
      sim_, shipping_spec(topo_, opts_.tier, "ship/" + vehicle_));
}

TelemetryShipper::~TelemetryShipper() {
  *alive_ = false;
  flusher_.stop();
}

void TelemetryShipper::count(std::string_view name, std::int64_t by) {
  pending_counters_[std::string(name)] += by;
}

void TelemetryShipper::gauge(std::string_view name, double value) {
  if (!std::isfinite(value)) return;
  pending_gauges_[std::string(name)] = value;
}

void TelemetryShipper::observe(std::string_view name, double value) {
  if (!std::isfinite(value)) return;
  std::vector<WireSample>& buf = pending_samples_[std::string(name)];
  buf.emplace_back(sim_.now(), value);
  ++stats_.samples_recorded;
  if (buf.size() > opts_.max_samples_per_metric) {
    buf.erase(buf.begin());
    ++stats_.samples_dropped;
  }
}

void TelemetryShipper::on_health_event(const analysis::HealthEvent& event) {
  WireHealthEvent w;
  w.at = event.at;
  w.kind = std::string(analysis::to_string(event.kind));
  w.severity = std::string(analysis::to_string(event.severity));
  w.service = event.service;
  w.observed = event.observed;
  w.target = event.target;
  w.implicated_tier = event.implicated_tier;
  pending_events_.push_back(std::move(w));
  if (pending_events_.size() > opts_.max_events) {
    pending_events_.erase(pending_events_.begin());
  }
}

void TelemetryShipper::start() {
  if (started_) return;
  started_ = true;
  flusher_ = sim_.every(opts_.flush_period, [this, alive = alive_]() {
    if (*alive) cut_frame();
  });
}

void TelemetryShipper::stop() {
  flusher_.stop();
  started_ = false;
}

void TelemetryShipper::flush_now() { cut_frame(); }

void TelemetryShipper::cut_frame() {
  PROF_SCOPE("shipper/cut_frame");
  if (pending_counters_.empty() && pending_gauges_.empty() &&
      pending_samples_.empty() && pending_events_.empty()) {
    return;
  }
  WireFrame frame;
  frame.vehicle = vehicle_;
  frame.seq = ++seq_;
  frame.created = sim_.now();
  frame.counters = std::move(pending_counters_);
  frame.gauges = std::move(pending_gauges_);
  frame.samples = std::move(pending_samples_);
  frame.events = std::move(pending_events_);
  pending_counters_.clear();
  pending_gauges_.clear();
  pending_samples_.clear();
  pending_events_.clear();

  Outbound ob;
  ob.seq = frame.seq;
  ob.bytes = wire_encode(frame);
  ++stats_.frames_enqueued;
  mirror_count("fleet.shipper.enqueued", 1);
  enqueue(std::move(ob));
}

void TelemetryShipper::enqueue(Outbound frame) {
  queue_.push_back(std::move(frame));
  while (queue_.size() > opts_.max_queue) {
    queue_.pop_front();
    drop_frame(1);
  }
  maybe_send();
}

void TelemetryShipper::maybe_send() {
  if (inflight_.has_value() || waiting_ || queue_.empty()) return;
  inflight_ = std::move(queue_.front());
  queue_.pop_front();
  attempts_ = 0;
  attempt();
}

void TelemetryShipper::attempt() {
  if (!inflight_.has_value()) return;
  ++stats_.send_attempts;
  if (attempts_ > 0) ++stats_.retries;
  ++attempts_;
  if (!topo_.available(opts_.tier)) {
    settle(false);
    return;
  }
  link_->set_spec(shipping_spec(topo_, opts_.tier, "ship/" + vehicle_));
  const std::uint64_t bytes = inflight_->bytes.size();
  stats_.wire_bytes += bytes;
  mirror_count("fleet.shipper.wire_bytes", static_cast<std::int64_t>(bytes));
  link_->send(bytes, [this, alive = alive_](const net::TransferReport& r) {
    if (*alive) settle(r.delivered);
  });
}

void TelemetryShipper::settle(bool delivered) {
  if (!inflight_.has_value()) return;
  if (delivered) {
    ++stats_.frames_acked;
    mirror_count("fleet.shipper.acked", 1);
    std::string bytes = std::move(inflight_->bytes);
    inflight_.reset();
    attempts_ = 0;
    if (deliver_) deliver_(bytes);
    maybe_send();
    return;
  }
  if (attempts_ >= opts_.max_attempts) {
    drop_frame(1);
    inflight_.reset();
    attempts_ = 0;
    maybe_send();
    return;
  }
  waiting_ = true;
  sim_.after(backoff(attempts_), [this, alive = alive_]() {
    if (!*alive) return;
    waiting_ = false;
    attempt();
  });
}

void TelemetryShipper::drop_frame(std::uint64_t count) {
  stats_.frames_dropped += count;
  mirror_count("fleet.shipper.dropped", static_cast<std::int64_t>(count));
}

sim::SimDuration TelemetryShipper::backoff(int attempt) const {
  sim::SimDuration delay = opts_.backoff_base;
  for (int i = 1; i < attempt && delay < opts_.backoff_cap; ++i) delay *= 2;
  return std::min(delay, opts_.backoff_cap);
}

void TelemetryShipper::mirror_count(std::string_view name, std::int64_t by) {
  telemetry::count(name, {{"vehicle", vehicle_}}, by);
}

}  // namespace vdap::telemetry::fleet
