// Downsampling in-memory time-series store (DESIGN.md §6e): the metric
// database a fleet aggregation point keeps per vehicle and fleet-wide.
//
// Each series is bucketed at a fixed raw interval; every bucket holds the
// exact count/sum/min/max of the samples that landed in it plus a capped
// util::Histogram sketch for quantiles. Three retention tiers — raw, mid
// (1 s) and coarse (10 s) by default — cascade: when a tier overflows its
// bucket budget, its oldest bucket is folded into the next tier's bucket
// via Histogram::merge (count/mean/min/max stay exact; quantiles reflect
// the merged, re-thinned sample sets). Old data therefore loses time
// resolution before it loses existence, and only the coarse tier ever
// evicts — with the evicted samples counted.
//
// Determinism: no clock, no RNG — every sample is timestamped by the
// caller, and Histogram thinning is deterministic, so two identical
// observation streams produce identical stores.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace vdap::telemetry::fleet {

class TimeSeriesStore {
 public:
  struct Options {
    sim::SimDuration raw_interval = sim::msec(100);
    sim::SimDuration mid_interval = sim::seconds(1);
    sim::SimDuration coarse_interval = sim::seconds(10);
    /// Bucket budget per tier; overflow cascades raw→mid→coarse→evict.
    std::size_t raw_buckets = 64;
    std::size_t mid_buckets = 120;
    std::size_t coarse_buckets = 360;
    /// Per-bucket histogram sample cap (deterministic thinning).
    std::size_t sketch_cap = 256;
  };

  enum class Tier : std::size_t { kRaw = 0, kMid = 1, kCoarse = 2 };
  static constexpr std::size_t kTierCount = 3;

  /// One fixed-interval bucket: [start, start + tier interval).
  struct Bucket {
    sim::SimTime start = 0;
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    util::Histogram sketch;
  };

  /// Aggregate over a queried time range (whole buckets intersecting it).
  struct RangeStats {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  TimeSeriesStore() : TimeSeriesStore(Options{}) {}
  explicit TimeSeriesStore(Options options);

  /// Records one sample. Returns false (and records nothing) for
  /// non-finite values or negative timestamps.
  bool observe(const std::string& series, sim::SimTime at, double value);

  /// Series names in lexicographic order.
  std::vector<std::string> names() const;
  bool has(const std::string& series) const;

  /// Lifetime totals — exact even after downsampling and eviction.
  std::size_t total_count(const std::string& series) const;
  double total_sum(const std::string& series) const;
  sim::SimTime latest(const std::string& series) const;

  /// Retained buckets of one tier, oldest first (nullptr: unknown series).
  const std::deque<Bucket>* buckets(const std::string& series, Tier tier) const;

  /// Coarse-tier evictions (buckets / samples) for this series.
  std::size_t evicted_buckets(const std::string& series) const;
  std::size_t evicted_samples(const std::string& series) const;

  /// Exact aggregate over retained buckets intersecting [from, to].
  RangeStats summarize(const std::string& series, sim::SimTime from,
                       sim::SimTime to) const;

  /// Merged quantile sketch over retained buckets intersecting [from, to].
  util::Histogram sketch(const std::string& series, sim::SimTime from,
                         sim::SimTime to) const;

  /// Quantile over everything retained for the series.
  double quantile(const std::string& series, double q) const;

  /// Samples rejected at observe() (non-finite value / negative time).
  std::size_t rejected() const { return rejected_; }

  const Options& options() const { return opts_; }

 private:
  struct Series {
    std::deque<Bucket> tiers[kTierCount];
    std::size_t total = 0;
    double sum = 0.0;
    sim::SimTime latest = 0;
    std::size_t evicted_buckets = 0;
    std::size_t evicted_samples = 0;
  };

  sim::SimDuration interval(Tier tier) const;
  std::size_t budget(Tier tier) const;
  /// Finds or creates the bucket of `tier` covering `at` (kept sorted by
  /// start so out-of-order arrivals land in the right place).
  Bucket& bucket_for(Series& s, Tier tier, sim::SimTime at);
  /// Folds the oldest bucket of an overflowing tier into the next tier
  /// (or evicts, with accounting, from the coarse tier).
  void compact(Series& s);

  Options opts_;
  std::map<std::string, Series> series_;
  std::size_t rejected_ = 0;
};

}  // namespace vdap::telemetry::fleet
