#include "telemetry/fleet/ingest.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/prof/profiler.hpp"
#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"

namespace vdap::telemetry::fleet {

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

double median_of(std::vector<double> values) {
  // values non-empty, by caller contract.
  std::sort(values.begin(), values.end());
  const std::size_t n = values.size();
  return n % 2 == 1 ? values[n / 2]
                    : 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

bool is_breach_kind(const std::string& kind) {
  return kind.find("breach") != std::string::npos;
}

IngestOptions clamped(IngestOptions o) {
  o.shards = std::max(o.shards, 1);
  o.threads = std::clamp(o.threads, 1, o.shards);
  o.min_vehicles = std::max<std::size_t>(o.min_vehicles, 2);
  o.seq_window = std::max<std::size_t>(o.seq_window, 16);
  o.detect_window = std::max<sim::SimDuration>(o.detect_window, 1);
  o.detect_period = std::max<sim::SimDuration>(o.detect_period, 1);
  return o;
}

}  // namespace

IngestShard::IngestShard(const IngestOptions& options) : opts_(clamped(options)) {
  // Enough slots to cover the detect window plus inclusive-edge slack.
  ring_span_ = static_cast<std::size_t>(
                   opts_.detect_window / opts_.detect_period) +
               2;
}

bool IngestShard::ingest_line(std::string_view line, std::string* error) {
  PROF_SCOPE("ingest/decode");
  std::optional<WireFrame> frame = wire_decode(line, error);
  if (!frame.has_value()) {
    ++decode_errors_;
    return false;
  }
  return ingest(*frame);
}

bool IngestShard::ingest(const WireFrame& frame) {
  Vehicle* v = nullptr;
  if (auto it = vehicles_.find(frame.vehicle); it != vehicles_.end()) {
    v = &it->second;
  } else {
    v = &vehicles_
             .emplace(frame.vehicle,
                      Vehicle{ColumnarStore(opts_.block, &pool_)})
             .first->second;
  }

  // Same duplicate/reorder/loss contract as FleetAggregator: sequence
  // numbers below the remembered window are treated as already seen.
  const std::uint64_t floor_seq =
      v->max_seq > opts_.seq_window ? v->max_seq - opts_.seq_window : 0;
  if (frame.seq <= floor_seq || v->seen.count(frame.seq) > 0) {
    ++v->duplicates;
    ++duplicates_;
    return false;
  }
  if (frame.seq < v->max_seq) {
    ++v->reordered;
    ++reordered_;
  }
  v->seen.insert(frame.seq);
  v->max_seq = std::max(v->max_seq, frame.seq);
  while (!v->seen.empty() &&
         *v->seen.begin() + opts_.seq_window < v->max_seq) {
    v->seen.erase(v->seen.begin());
  }
  ++v->frames;
  ++frames_;
  watermark_ = std::max(watermark_, frame.created);

  for (const auto& [name, delta] : frame.counters) v->counters[name] += delta;
  for (const auto& [name, value] : frame.gauges) v->gauges[name] = value;
  for (const WireHealthEvent& ev : frame.events) {
    ++v->health_events;
    if (is_breach_kind(ev.kind)) ++v->breaches;
  }
  for (const auto& [metric, samples] : frame.samples) {
    if (samples.empty()) continue;
    WindowRing* ring = &v->rings[metric];
    for (const WireSample& s : samples) {
      if (v->store.observe(metric, s.first, s.second)) {
        ++samples_;
        ring_add(ring, s.first, s.second);
      }
      watermark_ = std::max(watermark_, s.first);
    }
    dirty_.insert(metric);
  }
  return true;
}

void IngestShard::ring_add(WindowRing* ring, sim::SimTime at, double value) {
  if (ring->slots.empty()) ring->slots.assign(ring_span_, {0, 0.0});
  const std::int64_t span = static_cast<std::int64_t>(ring_span_);
  const std::int64_t slot = at / opts_.detect_period;
  if (ring->max_slot < 0) ring->max_slot = slot;
  if (slot > ring->max_slot) {
    const std::int64_t steps = std::min(slot - ring->max_slot, span);
    for (std::int64_t k = 1; k <= steps; ++k) {
      ring->slots[static_cast<std::size_t>((ring->max_slot + k) % span)] = {
          0, 0.0};
    }
    ring->max_slot = slot;
  }
  if (slot <= ring->max_slot - span) {
    ++ring_late_;  // older than the covered window; columnar store has it
    return;
  }
  auto& cell = ring->slots[static_cast<std::size_t>(slot % span)];
  ++cell.first;
  cell.second += value;
}

std::set<std::string> IngestShard::take_dirty() {
  std::set<std::string> out;
  out.swap(dirty_);
  return out;
}

void IngestShard::collect_means(
    const std::string& metric, sim::SimTime from, sim::SimTime to,
    std::vector<std::pair<std::string, double>>* out) const {
  const sim::SimDuration period = opts_.detect_period;
  const std::int64_t span = static_cast<std::int64_t>(ring_span_);
  for (const auto& [name, v] : vehicles_) {
    auto it = v.rings.find(metric);
    if (it == v.rings.end() || it->second.max_slot < 0) continue;
    const WindowRing& ring = it->second;
    std::uint64_t count = 0;
    double sum = 0.0;
    // Oldest → newest, fixed fold order: include slots [s·P, s·P + P)
    // intersecting [from, to] (the ring-granularity analogue of the old
    // store's bucket-intersect window semantics).
    for (std::int64_t s = std::max<std::int64_t>(ring.max_slot - span + 1, 0);
         s <= ring.max_slot; ++s) {
      if (s * period + period <= from || s * period > to) continue;
      const auto& cell = ring.slots[static_cast<std::size_t>(s % span)];
      count += cell.first;
      sum += cell.second;
    }
    if (count > 0) {
      out->emplace_back(name, sum / static_cast<double>(count));
    }
  }
}

std::uint64_t IngestShard::samples_rejected() const {
  std::uint64_t n = 0;
  for (const auto& [name, v] : vehicles_) n += v.store.rejected();
  return n;
}

std::uint64_t IngestShard::lost_frames() const {
  std::uint64_t lost = 0;
  for (const auto& [name, v] : vehicles_) {
    if (v.max_seq > v.frames) lost += v.max_seq - v.frames;
  }
  return lost;
}

ShardedIngestBackend::ShardedIngestBackend(IngestOptions options)
    : opts_(clamped(options)) {
  shards_.reserve(static_cast<std::size_t>(opts_.shards));
  for (int s = 0; s < opts_.shards; ++s) {
    shards_.push_back(std::make_unique<IngestShard>(opts_));
  }
  barrier_stats_.resize(shards_.size());
  if (opts_.threads > 1) {
    pool_ = std::make_unique<sim::ThreadPool>(opts_.threads);
  }
}

int ShardedIngestBackend::threads() const { return opts_.threads; }

int ShardedIngestBackend::shard_of(std::string_view vehicle_key) const {
  return static_cast<int>(fnv1a(vehicle_key) %
                          static_cast<std::uint64_t>(shards_.size()));
}

std::size_t ShardedIngestBackend::ingest_batch(
    const std::vector<std::string_view>& lines) {
  if (lines.empty()) return 0;
  ++batches_;
  const std::uint64_t before = frames_ingested();
  if (shards_.size() == 1) {
    for (std::string_view line : lines) shards_[0]->ingest_line(line);
  } else {
    std::vector<std::vector<std::string_view>> parts(shards_.size());
    for (auto& p : parts) p.reserve(lines.size() / shards_.size() + 1);
    for (std::string_view line : lines) {
      parts[static_cast<std::size_t>(shard_of(wire_peek_vehicle(line)))]
          .push_back(line);
    }
    std::vector<std::function<void()>> tasks;
    tasks.reserve(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
      IngestShard* shard = shards_[s].get();
      const std::vector<std::string_view>* part = &parts[s];
      tasks.push_back([shard, part]() {
        for (std::string_view line : *part) shard->ingest_line(line);
      });
    }
    if (pool_ != nullptr) {
      pool_->run(tasks);
    } else {
      for (auto& t : tasks) t();
    }
  }
  barrier();
  return static_cast<std::size_t>(frames_ingested() - before);
}

bool ShardedIngestBackend::ingest_line(std::string_view line,
                                       std::string* error) {
  return shards_[static_cast<std::size_t>(
                     shard_of(wire_peek_vehicle(line)))]
      ->ingest_line(line, error);
}

bool ShardedIngestBackend::ingest_on_shard(int shard, std::string_view line) {
  return shards_[static_cast<std::size_t>(shard)]->ingest_line(line);
}

void ShardedIngestBackend::barrier() {
  PROF_SCOPE("ingest/barrier");
  sim::SimTime wm = watermark_;
  for (const auto& s : shards_) wm = std::max(wm, s->watermark());
  watermark_ = wm;
  // Backpressure watermarks (runtime plane): how many frames each shard
  // decoded since the previous barrier, and how far its watermark trails
  // the merged one. Peaks only — per-shard values depend on the shard
  // geometry, so they never feed the deterministic capture.
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    BarrierStats& bs = barrier_stats_[i];
    const std::uint64_t frames = shards_[i]->frames_ingested();
    bs.backlog_peak = std::max(bs.backlog_peak, frames - bs.frames_last);
    bs.frames_last = frames;
    if (shards_[i]->frames_ingested() > 0) {
      bs.lag_us_peak = std::max(
          bs.lag_us_peak,
          static_cast<std::int64_t>(wm) -
              static_cast<std::int64_t>(shards_[i]->watermark()));
    }
  }
  std::set<std::string> dirty;
  for (auto& s : shards_) {
    std::set<std::string> d = s->take_dirty();
    dirty.insert(d.begin(), d.end());
  }
  for (const std::string& metric : dirty) {
    bool excluded = false;
    for (const std::string& prefix : opts_.detect_exclude) {
      if (metric.compare(0, prefix.size(), prefix) == 0) {
        excluded = true;
        break;
      }
    }
    if (!excluded) detect(metric);
  }
  mirror_metrics();
}

void ShardedIngestBackend::detect(const std::string& metric) {
  PROF_SCOPE("ingest/detect");
  const sim::SimTime from = watermark_ > opts_.detect_window
                                ? watermark_ - opts_.detect_window
                                : 0;
  std::vector<std::pair<std::string, double>> means;
  for (const auto& s : shards_) {
    s->collect_means(metric, from, watermark_, &means);
  }
  // Vehicle-name order: the fold below must not depend on which shard a
  // vehicle happens to live on.
  std::sort(means.begin(), means.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  ++detect_passes_;
  detect_scanned_ += means.size();
  if (means.size() < opts_.min_vehicles) return;

  std::vector<double> values;
  values.reserve(means.size());
  for (const auto& [name, m] : means) values.push_back(m);
  const double med = median_of(values);
  std::vector<double> deviations;
  deviations.reserve(values.size());
  for (double x : values) deviations.push_back(std::abs(x - med));
  double mad = median_of(std::move(deviations));
  // Same floor as the reference aggregator: a near-uniform fleet (MAD→0)
  // must not produce unbounded scores from numeric dust.
  mad = std::max(mad, 0.005 * std::max(std::abs(med), 1e-6));

  for (const auto& [name, x] : means) {
    const double score = 0.6745 * std::abs(x - med) / mad;
    const std::string key = metric + "|" + name;
    const bool flagged = active_.count(key) > 0;
    if (!flagged && score >= opts_.mad_threshold) {
      active_.insert(key);
      FleetAnomaly a;
      a.at = watermark_;
      a.vehicle = name;
      a.metric = metric;
      a.value = x;
      a.fleet_median = med;
      a.score = score;
      anomalies_.push_back(a);
      if (sink_) sink_(anomalies_.back());
    } else if (flagged && score < opts_.mad_threshold * opts_.clear_factor) {
      active_.erase(key);
    }
  }
}

void ShardedIngestBackend::mirror_metrics() {
  if (!telemetry::on()) return;
  MirrorState now;
  now.frames = frames_ingested();
  now.samples = samples_ingested();
  now.duplicates = duplicates();
  now.decode_errors = decode_errors();
  now.passes = detect_passes_;
  now.scanned = detect_scanned_;
  auto delta = [](std::uint64_t cur, std::uint64_t prev) {
    return static_cast<std::int64_t>(cur - prev);
  };
  if (now.frames != mirrored_.frames) {
    telemetry::count("fleet.ingest.frames", delta(now.frames, mirrored_.frames));
  }
  if (now.samples != mirrored_.samples) {
    telemetry::count("fleet.ingest.samples",
                     delta(now.samples, mirrored_.samples));
  }
  if (now.duplicates != mirrored_.duplicates) {
    telemetry::count("fleet.ingest.duplicates",
                     delta(now.duplicates, mirrored_.duplicates));
  }
  if (now.decode_errors != mirrored_.decode_errors) {
    telemetry::count("fleet.ingest.decode_errors",
                     delta(now.decode_errors, mirrored_.decode_errors));
  }
  if (now.passes != mirrored_.passes) {
    telemetry::count("fleet.ingest.detect.passes",
                     delta(now.passes, mirrored_.passes));
  }
  if (now.scanned != mirrored_.scanned) {
    telemetry::count("fleet.ingest.detect.scanned",
                     delta(now.scanned, mirrored_.scanned));
  }
  telemetry::gauge("fleet.ingest.vehicles",
                   static_cast<double>(vehicles().size()));
  mirrored_ = now;
}

std::vector<std::string> ShardedIngestBackend::anomalous_vehicles() const {
  std::vector<std::string> out;
  for (const FleetAnomaly& a : anomalies_) {
    if (std::find(out.begin(), out.end(), a.vehicle) == out.end()) {
      out.push_back(a.vehicle);
    }
  }
  return out;
}

std::vector<std::pair<const std::string*, const IngestShard::Vehicle*>>
ShardedIngestBackend::sorted_vehicles() const {
  std::vector<std::pair<const std::string*, const IngestShard::Vehicle*>> out;
  for (const auto& s : shards_) {
    for (const auto& [name, v] : s->vehicles()) out.emplace_back(&name, &v);
  }
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return *a.first < *b.first; });
  return out;
}

std::vector<std::string> ShardedIngestBackend::vehicles() const {
  std::vector<std::string> out;
  for (const auto& [name, v] : sorted_vehicles()) out.push_back(*name);
  return out;
}

std::int64_t ShardedIngestBackend::counter_total(const std::string& vehicle,
                                                 const std::string& name) const {
  for (const auto& s : shards_) {
    auto it = s->vehicles().find(vehicle);
    if (it == s->vehicles().end()) continue;
    auto c = it->second.counters.find(name);
    return c == it->second.counters.end() ? 0 : c->second;
  }
  return 0;
}

std::uint64_t ShardedIngestBackend::frames_ingested() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->frames_ingested();
  return n;
}

std::uint64_t ShardedIngestBackend::duplicates() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->duplicates();
  return n;
}

std::uint64_t ShardedIngestBackend::reordered() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->reordered();
  return n;
}

std::uint64_t ShardedIngestBackend::decode_errors() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->decode_errors();
  return n;
}

std::uint64_t ShardedIngestBackend::lost_frames() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->lost_frames();
  return n;
}

std::uint64_t ShardedIngestBackend::samples_ingested() const {
  std::uint64_t n = 0;
  for (const auto& s : shards_) n += s->samples_ingested();
  return n;
}

ShardedIngestBackend::PoolStats ShardedIngestBackend::pool_stats() const {
  PoolStats ps;
  for (const auto& s : shards_) {
    ps.column_allocs += s->pool().column_allocs();
    ps.column_reuses += s->pool().column_reuses();
    ps.buffer_allocs += s->pool().buffer_allocs();
    ps.buffer_reuses += s->pool().buffer_reuses();
    for (const auto& [name, v] : s->vehicles()) {
      for (const std::string& metric : v.store.names()) {
        const ColumnarSeries* series = v.store.series(metric);
        ps.sealed_blocks += series->sealed_blocks();
        ps.evicted_blocks += series->evicted_blocks();
        ps.encoded_bytes += series->encoded_bytes();
      }
    }
  }
  return ps;
}

std::string ShardedIngestBackend::rollup_table() const {
  const auto vehicles = sorted_vehicles();
  std::set<std::string> metrics;
  for (const auto& [name, v] : vehicles) {
    for (const std::string& m : v->store.names()) metrics.insert(m);
  }
  util::TextTable table("fleet metric rollup");
  table.set_header({"metric", "vehicles", "count", "mean", "p50", "p95",
                    "p99", "max", "outliers"});
  for (const std::string& metric : metrics) {
    std::size_t reporting = 0;
    std::size_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    bool have_max = false;
    util::Histogram sketch;
    sketch.set_sample_cap(opts_.block.sketch_cap);
    for (const auto& [name, v] : vehicles) {
      const ColumnarSeries* series = v->store.series(metric);
      if (series == nullptr) continue;
      ++reporting;
      count += series->total_count();
      sum += series->total_sum();
      if (!have_max || series->total_max() > max) max = series->total_max();
      have_max = true;
      sketch.merge(series->sketch(0, sim::kTimeMax));
    }
    std::size_t outliers = 0;
    for (const std::string& key : active_) {
      if (key.compare(0, metric.size() + 1, metric + "|") == 0) ++outliers;
    }
    const double mean =
        count > 0 ? sum / static_cast<double>(count) : 0.0;
    table.add_row({metric, std::to_string(reporting), std::to_string(count),
                   util::TextTable::num(mean),
                   util::TextTable::num(sketch.p50()),
                   util::TextTable::num(sketch.p95()),
                   util::TextTable::num(sketch.p99()),
                   util::TextTable::num(max), std::to_string(outliers)});
  }
  return table.to_string();
}

std::string ShardedIngestBackend::anomaly_table() const {
  util::TextTable table("fleet anomalies");
  table.set_header({"t(s)", "vehicle", "metric", "value", "fleet p50",
                    "score"});
  for (const FleetAnomaly& a : anomalies_) {
    table.add_row({util::TextTable::num(sim::to_seconds(a.at)), a.vehicle,
                   a.metric, util::TextTable::num(a.value),
                   util::TextTable::num(a.fleet_median),
                   util::TextTable::num(a.score, 1)});
  }
  return table.to_string();
}

std::string ShardedIngestBackend::vehicle_table() const {
  util::TextTable table("fleet vehicles");
  table.set_header({"vehicle", "frames", "dup", "reorder", "lost",
                    "health ev", "breaches"});
  for (const auto& [name, v] : sorted_vehicles()) {
    const std::uint64_t lost =
        v->max_seq > v->frames ? v->max_seq - v->frames : 0;
    table.add_row({*name, std::to_string(v->frames),
                   std::to_string(v->duplicates), std::to_string(v->reordered),
                   std::to_string(lost), std::to_string(v->health_events),
                   std::to_string(v->breaches)});
  }
  return table.to_string();
}

QueryResult ShardedIngestBackend::run_query(const Query& query) const {
  QueryResult r;
  r.query = query;
  const auto vehicles = sorted_vehicles();

  if (query.kind == Query::Kind::kRange) {
    util::Histogram fleet_sketch;
    fleet_sketch.set_sample_cap(opts_.block.sketch_cap);
    bool have_minmax = false;
    for (const auto& [name, v] : vehicles) {
      if (!query.vehicle.empty() && *name != query.vehicle) continue;
      const ColumnarSeries* series = v->store.series(query.metric);
      if (series == nullptr) continue;
      QueryVehicleRow row;
      row.vehicle = *name;
      row.agg = series->range(query.from, query.to);
      util::Histogram sketch = series->sketch(query.from, query.to);
      row.p50 = sketch.p50();
      row.p95 = sketch.p95();
      row.p99 = sketch.p99();
      if (row.agg.count > 0) {
        if (!have_minmax) {
          r.fleet.min = row.agg.min;
          r.fleet.max = row.agg.max;
          have_minmax = true;
        } else {
          r.fleet.min = std::min(r.fleet.min, row.agg.min);
          r.fleet.max = std::max(r.fleet.max, row.agg.max);
        }
        r.fleet.count += row.agg.count;
        r.fleet.sum += row.agg.sum;
      }
      fleet_sketch.merge(sketch);
      r.per_vehicle.push_back(std::move(row));
    }
    r.p50 = fleet_sketch.p50();
    r.p95 = fleet_sketch.p95();
    r.p99 = fleet_sketch.p99();
    return r;
  }

  for (const auto& [name, v] : vehicles) {
    const ColumnarSeries* sx = v->store.series("loc.x");
    const ColumnarSeries* sy = v->store.series("loc.y");
    if (sx == nullptr || sy == nullptr) continue;
    auto fx = sx->last_at_or_before(query.at);
    auto fy = sy->last_at_or_before(query.at);
    if (!fx.has_value() || !fy.has_value()) continue;
    const sim::SimTime horizon =
        query.at > query.within ? query.at - query.within : 0;
    if (fx->first < horizon || fy->first < horizon) continue;  // stale fix
    const double dx = fx->second - query.x;
    const double dy = fy->second - query.y;
    const double dist = std::sqrt(dx * dx + dy * dy);
    if (dist > query.radius) continue;
    QueryNearHit hit;
    hit.vehicle = *name;
    hit.x = fx->second;
    hit.y = fy->second;
    hit.dist = dist;
    hit.at = std::max(fx->first, fy->first);
    r.hits.push_back(std::move(hit));
  }
  std::sort(r.hits.begin(), r.hits.end(),
            [](const QueryNearHit& a, const QueryNearHit& b) {
              if (a.dist != b.dist) return a.dist < b.dist;
              return a.vehicle < b.vehicle;
            });
  return r;
}

std::string ShardedIngestBackend::run_query_text(std::string_view text,
                                                 std::string* error) const {
  Query q;
  if (!parse_query(text, &q, error)) return std::string();
  return run_query(q).to_table();
}

}  // namespace vdap::telemetry::fleet
