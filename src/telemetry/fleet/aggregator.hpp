// Cross-vehicle telemetry aggregation (DESIGN.md §6e): the component an
// XEdge/cloud node runs over the frame streams of many TelemetryShippers.
//
// Responsibilities:
//   * Ingest wire frames tolerating the transport's sins — duplicates are
//     detected per vehicle via sequence numbers and dropped, reordering is
//     tolerated (and counted), and gaps are accounted as lost frames
//     (max_seq − distinct frames seen, an underestimate while trailing
//     frames are still in flight).
//   * Maintain a downsampling TimeSeriesStore per vehicle plus one fused
//     fleet-wide store, and accumulate shipped counter deltas / gauges.
//   * Detect outlier vehicles per metric with a MAD-based modified
//     z-score (0.6745·|x − median| / MAD over the per-vehicle means of a
//     trailing window), emitting a FleetAnomaly on the scoring transition
//     (with hysteresis, so one sick vehicle yields one event, not one per
//     frame). The MAD is floored at a small fraction of the median so a
//     perfectly uniform fleet — MAD 0 — cannot flag anybody.
//
// Pure stream consumer: no clock, no RNG. Time advances only via the
// ingested frames' watermark, so the same frame sequence produces the same
// stores, events and report tables, byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/fleet/tsdb.hpp"
#include "telemetry/fleet/wire.hpp"

namespace vdap::telemetry::fleet {

/// One outlier transition: `vehicle`'s `metric` deviates from the fleet.
struct FleetAnomaly {
  sim::SimTime at = 0;        // ingest watermark when flagged
  std::string vehicle;
  std::string metric;
  double value = 0.0;         // the vehicle's window mean
  double fleet_median = 0.0;  // median of per-vehicle window means
  double score = 0.0;         // modified z-score
};

class FleetAggregator {
 public:
  struct Options {
    TimeSeriesStore::Options store;
    /// Modified z-score above which a vehicle is flagged...
    double mad_threshold = 3.5;
    /// ...and the fraction of the threshold it must fall back below to
    /// clear (hysteresis).
    double clear_factor = 0.7;
    /// Detection needs at least this many vehicles reporting the metric.
    std::size_t min_vehicles = 3;
    /// Trailing window (ending at the watermark) whose per-vehicle means
    /// are compared.
    sim::SimDuration detect_window = sim::seconds(15);
    /// Detection for a metric reruns only after the watermark advances
    /// this much — it scans every vehicle's window, so per-frame
    /// re-evaluation would make ingest O(vehicles²) per round.
    sim::SimDuration detect_period = sim::seconds(1);
    /// Recent sequence numbers remembered per vehicle for duplicate
    /// detection; older ones are assumed already-seen.
    std::size_t seq_window = 4096;
  };

  FleetAggregator() : FleetAggregator(Options{}) {}
  explicit FleetAggregator(Options options);

  /// Ingests one decoded frame. Returns false for duplicates (frame
  /// ignored), true otherwise.
  bool ingest(const WireFrame& frame);

  /// Decodes and ingests one JSONL line. Malformed lines are counted and
  /// reported via *error (when non-null); they never throw.
  bool ingest_wire(std::string_view line, std::string* error = nullptr);

  /// Epoch-batched ingest (DESIGN.md §6f): one lock-step epoch's worth of
  /// wire lines, already merged in canonical (time, vehicle, seq) order by
  /// the sharded runner. Equivalent to ingest_wire per line; returns the
  /// number of frames accepted (batch size minus duplicates and decode
  /// errors).
  std::size_t ingest_batch(const std::vector<std::string_view>& lines);
  /// Batches ingested via ingest_batch (empty epochs are not counted).
  std::uint64_t batches() const { return batches_; }

  /// Called synchronously on every anomaly transition (after it is
  /// appended to anomalies()).
  void set_anomaly_sink(std::function<void(const FleetAnomaly&)> sink) {
    sink_ = std::move(sink);
  }

  const std::vector<FleetAnomaly>& anomalies() const { return anomalies_; }
  /// Distinct vehicles flagged, in first-flag order.
  std::vector<std::string> anomalous_vehicles() const;

  std::vector<std::string> vehicles() const;
  const TimeSeriesStore& fleet_store() const { return fleet_; }
  const TimeSeriesStore* vehicle_store(const std::string& vehicle) const;
  std::int64_t counter_total(const std::string& vehicle,
                             const std::string& name) const;

  std::uint64_t frames_ingested() const { return frames_; }
  std::uint64_t duplicates() const { return duplicates_; }
  std::uint64_t reordered() const { return reordered_; }
  std::uint64_t decode_errors() const { return decode_errors_; }
  /// Sum over vehicles of max_seq − distinct frames (gaps).
  std::uint64_t lost_frames() const;
  sim::SimTime watermark() const { return watermark_; }

  /// Report tables (util::TextTable), deterministic per ingest sequence.
  std::string rollup_table() const;
  std::string anomaly_table() const;
  std::string vehicle_table() const;

 private:
  struct Vehicle {
    TimeSeriesStore store;
    std::map<std::string, std::int64_t> counters;
    std::map<std::string, double> gauges;
    std::uint64_t frames = 0;      // distinct frames ingested
    std::uint64_t duplicates = 0;
    std::uint64_t reordered = 0;
    std::uint64_t max_seq = 0;
    std::set<std::uint64_t> seen;  // pruned to the seq window
    std::uint64_t health_events = 0;
    std::uint64_t breaches = 0;
  };

  void detect(const std::string& metric);

  Options opts_;
  TimeSeriesStore fleet_;
  std::map<std::string, Vehicle> vehicles_;
  std::vector<FleetAnomaly> anomalies_;
  /// metric + "|" + vehicle → currently flagged (hysteresis state).
  std::set<std::string> active_;
  /// metric → watermark of its last detection pass (throttle state).
  std::map<std::string, sim::SimTime> last_detect_;
  std::function<void(const FleetAnomaly&)> sink_;
  sim::SimTime watermark_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t frames_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t reordered_ = 0;
  std::uint64_t decode_errors_ = 0;
};

}  // namespace vdap::telemetry::fleet
