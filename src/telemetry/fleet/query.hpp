// DDI-style query layer over the fused fleet store (DESIGN.md §6g): the
// libvdap service-layer lookups the paper promises — "this vehicle's
// metric over that time range" and "who was near location X at time T" —
// expressed as one-line textual queries so vdap-report and tests can
// drive them without compiling against the backend.
//
// Grammar (whitespace-separated key=value pairs after a leading keyword):
//
//   range metric=<name> [vehicle=<name>] [from=<time>] [to=<time>]
//   near  x=<num> y=<num> r=<num> at=<time> [within=<duration>]
//
// Times and durations accept an optional unit suffix — `us`, `ms`, `s`
// (default) or `min` — e.g. `from=40s to=1.5min within=500ms`.
//
// `range` aggregates one metric over the closed interval [from, to]:
// count/sum-derived mean/min/max are exact sample-level answers, while
// p50/p95/p99 come from the block-granularity sketches (every columnar
// block whose span intersects the range contributes wholly). `near`
// resolves each vehicle's last `loc.x`/`loc.y` fix at or before `at`
// (no older than `within`) and returns the vehicles within Euclidean
// distance `r`.
//
// The parser is total: any byte sequence either yields a Query or a
// diagnostic string — never a crash; the robustness suite fuzzes it.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "telemetry/fleet/columnar.hpp"

namespace vdap::telemetry::fleet {

struct Query {
  enum class Kind { kRange, kNear };
  Kind kind = Kind::kRange;

  // kRange:
  std::string metric;
  std::string vehicle;  // empty = fleet-wide
  sim::SimTime from = 0;
  sim::SimTime to = sim::kTimeMax;

  // kNear:
  double x = 0.0;
  double y = 0.0;
  double radius = 0.0;
  sim::SimTime at = 0;
  sim::SimDuration within = sim::seconds(5);
};

/// Parses one query line. Returns false with a diagnostic in *error (when
/// non-null) for anything malformed: unknown keyword or key, duplicate or
/// missing keys, bad numbers, inverted ranges, out-of-range times.
bool parse_query(std::string_view text, Query* out,
                 std::string* error = nullptr);

/// One vehicle's contribution to a range query.
struct QueryVehicleRow {
  std::string vehicle;
  ColumnarSeries::RangeAgg agg;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
};

/// One vehicle within radius for a near query.
struct QueryNearHit {
  std::string vehicle;
  double x = 0.0;
  double y = 0.0;
  double dist = 0.0;
  sim::SimTime at = 0;  // timestamp of the newer coordinate fix used
};

struct QueryResult {
  Query query;

  // kRange: fleet-wide fold (vehicle-name order) + per-vehicle rows.
  ColumnarSeries::RangeAgg fleet;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<QueryVehicleRow> per_vehicle;  // vehicle-name order

  // kNear: hits by ascending distance (vehicle name breaks ties).
  std::vector<QueryNearHit> hits;

  /// Deterministic util::TextTable render.
  std::string to_table() const;
};

}  // namespace vdap::telemetry::fleet
