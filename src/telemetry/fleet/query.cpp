#include "telemetry/fleet/query.hpp"

#include <cmath>
#include <cstdlib>
#include <map>
#include <set>

#include "util/stats.hpp"
#include "util/strings.hpp"

namespace vdap::telemetry::fleet {

namespace {

bool fail(std::string* error, std::string why) {
  if (error != nullptr) *error = std::move(why);
  return false;
}

/// Parses a plain finite double, requiring the whole token to be consumed.
bool parse_num(std::string_view token, double* out) {
  if (token.empty() || token.size() > 64) return false;
  char buf[65];
  token.copy(buf, token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + token.size()) return false;
  if (!std::isfinite(v)) return false;
  *out = v;
  return true;
}

/// Parses `<num>[us|ms|s|min]` into microseconds (default unit: seconds).
bool parse_time(std::string_view token, sim::SimTime* out) {
  double scale = 1e6;  // seconds
  if (token.size() > 3 && token.substr(token.size() - 3) == "min") {
    scale = 60e6;
    token.remove_suffix(3);
  } else if (token.size() > 2 && token.substr(token.size() - 2) == "us") {
    scale = 1.0;
    token.remove_suffix(2);
  } else if (token.size() > 2 && token.substr(token.size() - 2) == "ms") {
    scale = 1e3;
    token.remove_suffix(2);
  } else if (token.size() > 1 && token.back() == 's') {
    token.remove_suffix(1);
  }
  double v = 0.0;
  if (!parse_num(token, &v)) return false;
  const double us = v * scale;
  // Keep well inside int64 so downstream arithmetic cannot overflow.
  if (!std::isfinite(us) || std::abs(us) > 4.0e18) return false;
  *out = static_cast<sim::SimTime>(us + (us >= 0 ? 0.5 : -0.5));
  return true;
}

std::vector<std::string_view> tokenize(std::string_view text) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && (text[i] == ' ' || text[i] == '\t')) ++i;
    std::size_t start = i;
    while (i < text.size() && text[i] != ' ' && text[i] != '\t') ++i;
    if (i > start) out.push_back(text.substr(start, i - start));
  }
  return out;
}

std::string fmt_time(sim::SimTime t) {
  if (t == sim::kTimeMax) return "end";
  return util::TextTable::num(sim::to_seconds(t), 2) + "s";
}

}  // namespace

bool parse_query(std::string_view text, Query* out, std::string* error) {
  std::vector<std::string_view> tokens = tokenize(text);
  if (tokens.empty()) return fail(error, "query: empty");
  Query q;
  if (tokens[0] == "range") {
    q.kind = Query::Kind::kRange;
  } else if (tokens[0] == "near") {
    q.kind = Query::Kind::kNear;
  } else {
    return fail(error, "query: unknown keyword '" + std::string(tokens[0]) +
                           "' (want 'range' or 'near')");
  }

  std::set<std::string> seen;
  for (std::size_t i = 1; i < tokens.size(); ++i) {
    const std::string_view token = tokens[i];
    const std::size_t eq = token.find('=');
    if (eq == std::string_view::npos || eq == 0) {
      return fail(error, "query: expected key=value, got '" +
                             std::string(token) + "'");
    }
    const std::string key(token.substr(0, eq));
    const std::string_view value = token.substr(eq + 1);
    if (value.empty()) {
      return fail(error, "query: empty value for '" + key + "'");
    }
    if (!seen.insert(key).second) {
      return fail(error, "query: duplicate key '" + key + "'");
    }

    const bool is_range = q.kind == Query::Kind::kRange;
    if (is_range && key == "metric") {
      q.metric = std::string(value);
    } else if (is_range && key == "vehicle") {
      q.vehicle = std::string(value);
    } else if (is_range && (key == "from" || key == "to")) {
      sim::SimTime t = 0;
      if (!parse_time(value, &t) || t < 0) {
        return fail(error, "query: bad time '" + std::string(value) + "'");
      }
      (key == "from" ? q.from : q.to) = t;
    } else if (!is_range && (key == "x" || key == "y" || key == "r")) {
      double v = 0.0;
      if (!parse_num(value, &v)) {
        return fail(error, "query: bad number '" + std::string(value) + "'");
      }
      if (key == "x") q.x = v;
      if (key == "y") q.y = v;
      if (key == "r") q.radius = v;
    } else if (!is_range && (key == "at" || key == "within")) {
      sim::SimTime t = 0;
      if (!parse_time(value, &t) || t < 0) {
        return fail(error, "query: bad time '" + std::string(value) + "'");
      }
      (key == "at" ? q.at : q.within) = t;
    } else {
      return fail(error, "query: unknown key '" + key + "'");
    }
  }

  if (q.kind == Query::Kind::kRange) {
    if (q.metric.empty()) return fail(error, "query: range needs metric=");
    if (q.from > q.to) return fail(error, "query: from > to");
  } else {
    for (const char* need : {"x", "y", "r", "at"}) {
      if (seen.count(need) == 0) {
        return fail(error,
                    std::string("query: near needs ") + need + "=");
      }
    }
    if (q.radius < 0) return fail(error, "query: negative radius");
  }
  *out = q;
  return true;
}

std::string QueryResult::to_table() const {
  if (query.kind == Query::Kind::kRange) {
    std::string title = "query range metric=" + query.metric;
    if (!query.vehicle.empty()) title += " vehicle=" + query.vehicle;
    title += " from=" + fmt_time(query.from) + " to=" + fmt_time(query.to);
    util::TextTable t(title);
    t.set_header({"vehicle", "count", "mean", "min", "max", "p50", "p95",
                  "p99"});
    auto row = [&t](const std::string& name,
                    const ColumnarSeries::RangeAgg& agg, double p50,
                    double p95, double p99) {
      t.add_row({name, std::to_string(agg.count),
                 util::TextTable::num(agg.mean()),
                 util::TextTable::num(agg.min), util::TextTable::num(agg.max),
                 util::TextTable::num(p50), util::TextTable::num(p95),
                 util::TextTable::num(p99)});
    };
    for (const QueryVehicleRow& v : per_vehicle) {
      row(v.vehicle, v.agg, v.p50, v.p95, v.p99);
    }
    row("(fleet)", fleet, p50, p95, p99);
    return t.to_string();
  }

  util::TextTable t("query near x=" + util::TextTable::num(query.x) +
                    " y=" + util::TextTable::num(query.y) +
                    " r=" + util::TextTable::num(query.radius) +
                    " at=" + fmt_time(query.at));
  t.set_header({"vehicle", "x", "y", "dist", "t(s)"});
  for (const QueryNearHit& h : hits) {
    t.add_row({h.vehicle, util::TextTable::num(h.x),
               util::TextTable::num(h.y), util::TextTable::num(h.dist),
               util::TextTable::num(sim::to_seconds(h.at), 2)});
  }
  return t.to_string();
}

}  // namespace vdap::telemetry::fleet
