#include "telemetry/fleet/wire.hpp"

#include <cmath>

#include "util/json.hpp"

namespace vdap::telemetry::fleet {

namespace {

bool fail(std::string* error, std::string message) {
  if (error != nullptr) *error = std::move(message);
  return false;
}

bool decode_counters(const json::Value& v, WireFrame& out,
                     std::string* error) {
  if (!v.is_object()) return fail(error, "wire: \"counters\" is not an object");
  for (const auto& [name, val] : v.as_object()) {
    if (!val.is_int()) {
      return fail(error, "wire: counter \"" + name + "\" is not an integer");
    }
    out.counters[name] = val.as_int();
  }
  return true;
}

bool decode_gauges(const json::Value& v, WireFrame& out, std::string* error) {
  if (!v.is_object()) return fail(error, "wire: \"gauges\" is not an object");
  for (const auto& [name, val] : v.as_object()) {
    if (!val.is_number()) {
      return fail(error, "wire: gauge \"" + name + "\" is not a number");
    }
    out.gauges[name] = val.as_double();
  }
  return true;
}

bool decode_samples(const json::Value& v, WireFrame& out, std::string* error) {
  if (!v.is_object()) return fail(error, "wire: \"samples\" is not an object");
  for (const auto& [name, arr] : v.as_object()) {
    if (!arr.is_array()) {
      return fail(error, "wire: samples \"" + name + "\" is not an array");
    }
    std::vector<WireSample>& dst = out.samples[name];
    for (const json::Value& pair : arr.as_array()) {
      if (!pair.is_array() || pair.size() != 2 || !pair.at(0).is_int() ||
          !pair.at(1).is_number()) {
        return fail(error, "wire: samples \"" + name +
                               "\" entry is not [ts, value]");
      }
      const double value = pair.at(1).as_double();
      if (!std::isfinite(value)) {
        return fail(error, "wire: samples \"" + name + "\" value not finite");
      }
      dst.emplace_back(pair.at(0).as_int(), value);
    }
  }
  return true;
}

bool decode_events(const json::Value& v, WireFrame& out, std::string* error) {
  if (!v.is_array()) return fail(error, "wire: \"events\" is not an array");
  for (const json::Value& ev : v.as_array()) {
    if (!ev.is_object()) {
      return fail(error, "wire: events entry is not an object");
    }
    WireHealthEvent w;
    w.at = ev.get_int("at");
    w.kind = ev.get_string("kind");
    w.severity = ev.get_string("severity");
    w.service = ev.get_string("service");
    w.observed = ev.get_double("observed");
    w.target = ev.get_double("target");
    w.implicated_tier = ev.get_string("tier");
    if (w.kind.empty() || w.service.empty()) {
      return fail(error, "wire: events entry missing kind/service");
    }
    out.events.push_back(std::move(w));
  }
  return true;
}

}  // namespace

std::string wire_encode(const WireFrame& frame) {
  json::Object obj;
  obj["v"] = frame.vehicle;
  obj["seq"] = static_cast<std::int64_t>(frame.seq);
  obj["t"] = frame.created;
  if (!frame.counters.empty()) {
    json::Object counters;
    for (const auto& [name, v] : frame.counters) counters[name] = v;
    obj["counters"] = std::move(counters);
  }
  if (!frame.gauges.empty()) {
    json::Object gauges;
    for (const auto& [name, v] : frame.gauges) gauges[name] = v;
    obj["gauges"] = std::move(gauges);
  }
  if (!frame.samples.empty()) {
    json::Object samples;
    for (const auto& [name, vec] : frame.samples) {
      json::Array arr;
      arr.reserve(vec.size());
      for (const WireSample& s : vec) {
        arr.push_back(json::Array{json::Value(s.first), json::Value(s.second)});
      }
      samples[name] = std::move(arr);
    }
    obj["samples"] = std::move(samples);
  }
  if (!frame.events.empty()) {
    json::Array events;
    for (const WireHealthEvent& ev : frame.events) {
      json::Object e;
      e["at"] = ev.at;
      e["kind"] = ev.kind;
      e["severity"] = ev.severity;
      e["service"] = ev.service;
      e["observed"] = ev.observed;
      e["target"] = ev.target;
      if (!ev.implicated_tier.empty()) e["tier"] = ev.implicated_tier;
      events.push_back(std::move(e));
    }
    obj["events"] = std::move(events);
  }
  return json::Value(std::move(obj)).dump();
}

std::optional<WireFrame> wire_decode(std::string_view line,
                                     std::string* error) {
  std::optional<json::Value> parsed = json::try_parse(line);
  if (!parsed.has_value()) {
    fail(error, "wire: frame is not valid JSON");
    return std::nullopt;
  }
  if (!parsed->is_object()) {
    fail(error, "wire: frame is not a JSON object");
    return std::nullopt;
  }

  WireFrame out;
  out.vehicle = parsed->get_string("v");
  if (out.vehicle.empty()) {
    fail(error, "wire: frame missing vehicle (\"v\")");
    return std::nullopt;
  }
  const std::int64_t seq = parsed->get_int("seq", -1);
  if (seq < 1) {
    fail(error, "wire: frame missing positive \"seq\"");
    return std::nullopt;
  }
  out.seq = static_cast<std::uint64_t>(seq);
  out.created = parsed->get_int("t", -1);
  if (out.created < 0) {
    fail(error, "wire: frame missing timestamp (\"t\")");
    return std::nullopt;
  }

  if (const json::Value* v = parsed->find("counters")) {
    if (!decode_counters(*v, out, error)) return std::nullopt;
  }
  if (const json::Value* v = parsed->find("gauges")) {
    if (!decode_gauges(*v, out, error)) return std::nullopt;
  }
  if (const json::Value* v = parsed->find("samples")) {
    if (!decode_samples(*v, out, error)) return std::nullopt;
  }
  if (const json::Value* v = parsed->find("events")) {
    if (!decode_events(*v, out, error)) return std::nullopt;
  }
  return out;
}

std::string_view wire_peek_vehicle(std::string_view line) {
  constexpr std::string_view kKey = "\"v\":\"";
  const std::size_t pos = line.rfind(kKey);
  if (pos == std::string_view::npos) return {};
  const std::size_t start = pos + kKey.size();
  std::size_t end = start;
  while (end < line.size() && line[end] != '"') {
    if (line[end] == '\\') ++end;  // skip the escaped character
    ++end;
  }
  if (end > line.size()) return {};  // dangling escape
  if (end == line.size()) return {};  // unterminated string
  return line.substr(start, end - start);
}

}  // namespace vdap::telemetry::fleet
