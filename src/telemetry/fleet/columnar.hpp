// Columnar sample storage for the fleet ingest backend (DESIGN.md §6g).
//
// A series accumulates (time, value) pairs into an in-memory ACTIVE block
// (two plain columns). When the active block reaches its size budget it is
// SEALED: the columns are serialized to one compact byte string (zigzag
// varint time deltas + raw little-endian doubles + FNV checksum) and only
// the encoded bytes plus a per-block summary — time span, count, sum,
// min/max and a capped util::Histogram quantile sketch (built in one
// Histogram::add_bulk pass) — stay resident. Range queries prune on block
// summaries, answer fully-covered blocks from the summary alone, and
// decode only the partially-overlapped blocks. Sealed blocks beyond the
// block budget are evicted oldest-first with exact accounting; lifetime
// count/sum/min/max stay exact forever.
//
// The BlockPool recycles column vectors and encode buffers between seals
// (and across a shard's vehicles), so steady-state ingest appends into
// already-sized memory — the hot path allocates nothing.
//
// Determinism: no clock, no RNG, no pointer-keyed containers. Identical
// append sequences produce identical blocks, summaries and encodings, so
// the ingest oracle suite can require byte-equality across shard and
// thread counts.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace vdap::telemetry::fleet {

/// Decoded columns of one block (times and values, index-aligned).
struct ColumnData {
  std::vector<sim::SimTime> times;
  std::vector<double> values;

  std::size_t size() const { return times.size(); }
  bool empty() const { return times.empty(); }
  void clear() {
    times.clear();
    values.clear();
  }
};

/// Serializes columns to the "VCB1" block format (see columnar.cpp).
std::string columnar_encode(const ColumnData& cols);

/// Appends the encoded bytes to *out (the pooled-buffer variant).
void columnar_encode_to(const ColumnData& cols, std::string* out);

/// Parses one encoded block. Validates magic, declared count vs available
/// bytes, varint shapes, the checksum and trailing garbage; malformed or
/// truncated input returns false with a diagnostic in *error (never
/// crashes, never over-reads) — the fuzz suite leans on this.
bool columnar_decode(std::string_view bytes, ColumnData* out,
                     std::string* error = nullptr);

/// Free lists of column vectors and encode buffers, recycled between block
/// seals and evictions so steady-state ingest reuses already-grown memory.
/// Single-threaded by design: each ingest shard owns one pool.
class BlockPool {
 public:
  ColumnData acquire() {
    if (!columns_.empty()) {
      ColumnData d = std::move(columns_.back());
      columns_.pop_back();
      d.clear();
      ++column_reuses_;
      return d;
    }
    ++column_allocs_;
    return ColumnData{};
  }
  void release(ColumnData&& d) {
    if (columns_.size() < kMaxFree) columns_.push_back(std::move(d));
  }

  std::string acquire_bytes() {
    if (!buffers_.empty()) {
      std::string b = std::move(buffers_.back());
      buffers_.pop_back();
      b.clear();
      ++buffer_reuses_;
      return b;
    }
    ++buffer_allocs_;
    return std::string{};
  }
  void release_bytes(std::string&& b) {
    if (buffers_.size() < kMaxFree) buffers_.push_back(std::move(b));
  }

  std::uint64_t column_allocs() const { return column_allocs_; }
  std::uint64_t column_reuses() const { return column_reuses_; }
  std::uint64_t buffer_allocs() const { return buffer_allocs_; }
  std::uint64_t buffer_reuses() const { return buffer_reuses_; }
  /// Free-list occupancy right now (the sharded runtime report).
  std::size_t columns_free() const { return columns_.size(); }
  std::size_t buffers_free() const { return buffers_.size(); }

 private:
  static constexpr std::size_t kMaxFree = 64;
  std::vector<ColumnData> columns_;
  std::vector<std::string> buffers_;
  std::uint64_t column_allocs_ = 0;
  std::uint64_t column_reuses_ = 0;
  std::uint64_t buffer_allocs_ = 0;
  std::uint64_t buffer_reuses_ = 0;
};

/// One metric's sample history: an active column pair plus sealed encoded
/// blocks, oldest first.
class ColumnarSeries {
 public:
  struct Options {
    /// Active block seals at this many samples.
    std::size_t block_samples = 512;
    /// Sealed-block budget; overflow evicts oldest (with accounting).
    std::size_t max_blocks = 256;
    /// Per-block quantile sketch cap (deterministic thinning).
    std::size_t sketch_cap = 256;
  };

  /// Exact aggregate over the closed time interval [from, to].
  struct RangeAgg {
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double mean() const {
      return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }
  };

  ColumnarSeries() : ColumnarSeries(Options{}) {}
  explicit ColumnarSeries(const Options& options);

  /// Appends one sample; `pool` (may be null) recycles block memory.
  void append(sim::SimTime at, double value, BlockPool* pool);

  /// Lifetime totals — exact even after sealing and eviction.
  std::size_t total_count() const { return total_count_; }
  double total_sum() const { return total_sum_; }
  double total_min() const { return total_count_ > 0 ? total_min_ : 0.0; }
  double total_max() const { return total_count_ > 0 ? total_max_ : 0.0; }
  sim::SimTime latest() const { return latest_; }

  /// Exact sample-level aggregate over [from, to] (both ends inclusive).
  /// Prunes on block summaries; decodes only partially-covered blocks.
  RangeAgg range(sim::SimTime from, sim::SimTime to) const;

  /// Quantile sketch over [from, to] at BLOCK granularity: every block
  /// whose time span intersects the range contributes its whole sketch,
  /// merged oldest-block-first (deterministic thinning order).
  util::Histogram sketch(sim::SimTime from, sim::SimTime to) const;

  /// Latest sample at or before `t` (the location-lookup primitive).
  std::optional<std::pair<sim::SimTime, double>> last_at_or_before(
      sim::SimTime t) const;

  std::size_t sealed_blocks() const { return sealed_.size(); }
  std::size_t evicted_blocks() const { return evicted_blocks_; }
  std::size_t evicted_samples() const { return evicted_samples_; }
  std::size_t encoded_bytes() const { return encoded_bytes_; }
  const Options& options() const { return opts_; }

 private:
  struct Sealed {
    sim::SimTime min_time = 0;
    sim::SimTime max_time = 0;
    std::size_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    util::Histogram sketch;
    std::string bytes;  // columnar_encode of the sealed columns
  };

  void seal(BlockPool* pool);

  Options opts_;
  std::deque<Sealed> sealed_;
  ColumnData active_;
  util::Histogram active_sketch_;
  std::size_t total_count_ = 0;
  double total_sum_ = 0.0;
  double total_min_ = 0.0;
  double total_max_ = 0.0;
  sim::SimTime latest_ = 0;
  std::size_t evicted_blocks_ = 0;
  std::size_t evicted_samples_ = 0;
  std::size_t encoded_bytes_ = 0;
};

/// The per-vehicle metric database an ingest shard keeps: one
/// ColumnarSeries per metric name, sharing the owning shard's BlockPool.
class ColumnarStore {
 public:
  ColumnarStore() : ColumnarStore(ColumnarSeries::Options{}, nullptr) {}
  ColumnarStore(const ColumnarSeries::Options& options, BlockPool* pool)
      : opts_(options), pool_(pool) {}

  /// Records one sample. Returns false (and records nothing) for
  /// non-finite values or negative timestamps — the same validation
  /// contract as TimeSeriesStore::observe.
  bool observe(const std::string& series, sim::SimTime at, double value);

  /// Series names in lexicographic order.
  std::vector<std::string> names() const;
  bool has(const std::string& series) const { return series_.count(series) > 0; }
  const ColumnarSeries* series(const std::string& name) const;

  std::size_t total_count(const std::string& series) const;
  double total_sum(const std::string& series) const;

  /// Samples rejected at observe() (non-finite value / negative time).
  std::size_t rejected() const { return rejected_; }

 private:
  ColumnarSeries::Options opts_;
  BlockPool* pool_;
  std::map<std::string, ColumnarSeries> series_;
  std::size_t rejected_ = 0;
};

}  // namespace vdap::telemetry::fleet
