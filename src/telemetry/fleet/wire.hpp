// Fleet telemetry wire format (DESIGN.md §6e): the sequence-numbered frame
// a vehicle's TelemetryShipper ships to the XEdge/cloud aggregation point.
//
// One frame is one compact single-line JSON object (JSONL on disk):
//
//   {"counters":{"svc.ok":3},"events":[...],"gauges":{"queue":2},
//    "samples":{"svc.latency_ms":[[1500000,12.5],...]},
//    "seq":4,"t":4000000,"v":"cav-2"}
//
// Counters carry DELTAS since the previous frame (the aggregator
// accumulates), gauges carry last values, samples carry (sim-time µs,
// value) pairs, and events carry HealthEvents observed since the previous
// frame. Encoding goes through json::Object (std::map), so a frame's bytes
// are a deterministic function of its content. Decoding tolerates unknown
// fields — newer vehicles may ship more than an older aggregator knows —
// and reports malformed input as a clean error string, never a crash.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"

namespace vdap::telemetry::fleet {

/// HealthEvent as shipped over the wire (telemetry/analysis/slo.hpp
/// flattened to strings so the aggregator needs no evaluator state).
struct WireHealthEvent {
  sim::SimTime at = 0;
  std::string kind;      // to_string(HealthEventKind)
  std::string severity;  // to_string(Severity)
  std::string service;
  double observed = 0.0;
  double target = 0.0;
  std::string implicated_tier;  // may be empty
};

/// One (ts µs, value) metric sample.
using WireSample = std::pair<sim::SimTime, double>;

struct WireFrame {
  std::string vehicle;
  std::uint64_t seq = 0;    // 1-based, strictly increasing per vehicle
  sim::SimTime created = 0; // frame cut time on the vehicle's sim clock
  std::map<std::string, std::int64_t> counters;  // deltas
  std::map<std::string, double> gauges;          // last values
  std::map<std::string, std::vector<WireSample>> samples;
  std::vector<WireHealthEvent> events;

  bool payload_empty() const {
    return counters.empty() && gauges.empty() && samples.empty() &&
           events.empty();
  }
};

/// Serializes a frame to one line of JSON (no trailing newline).
std::string wire_encode(const WireFrame& frame);

/// Parses one frame line. Unknown fields are ignored; malformed input
/// returns std::nullopt with a diagnostic in *error (when non-null).
std::optional<WireFrame> wire_decode(std::string_view line,
                                     std::string* error = nullptr);

/// Cheap shard-routing peek: extracts the vehicle name from an encoded
/// frame without a full JSON parse. Encoding goes through json::Object
/// (sorted keys), so `"v"` is the LAST key of every frame line — scan
/// backwards for its marker. Returns an empty view when the marker is
/// absent; names containing JSON escapes come back raw. The result is a
/// deterministic routing KEY (every frame of a vehicle peeks identically),
/// not necessarily the decoded name.
std::string_view wire_peek_vehicle(std::string_view line);

}  // namespace vdap::telemetry::fleet
