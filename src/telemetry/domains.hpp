// Per-shard telemetry domains for a sharded run (DESIGN.md §6h).
//
// sim::ShardedSimulator binds shard i's Domain on whichever pool thread
// runs shard i's epoch, and the coordinator Domain around the barrier
// itself (message exchange, epoch sinks, ingest mirrors). At every epoch
// barrier — all shards quiesced — merge_epoch() drains each domain's new
// trace events and appends them to a master log in a canonical order that
// is a pure function of the event *multiset*, so the merged export is
// byte-identical across the shard × thread matrix for instrumentation
// whose content does not itself depend on the shard geometry (the
// entity-partitioned fleet paths; see §6h for the exact contract).
//
// Metrics stay cumulative inside each domain; merged_metrics() folds them
// on demand in shard-index order (then the coordinator). Counters are
// int64 sums, so the merged values are geometry-exact.
//
// The DomainSet also carries a *runtime* registry — wall-clock-derived
// introspection of the sharded runtime (barrier waits, queue occupancy,
// ingest lag). It is deliberately not part of the deterministic capture
// surface; it feeds the shards report (shard_report.hpp), never the
// byte-identity tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace vdap::telemetry {

class DomainSet {
 public:
  explicit DomainSet(int shards);

  int shards() const { return static_cast<int>(shards_.size()); }
  Domain* shard_domain(int i) {
    return &shards_[static_cast<std::size_t>(i)]->domain;
  }
  Domain* coordinator_domain() { return &coordinator_.domain; }

  /// Epoch-barrier merge: drains every domain's trace events recorded since
  /// the previous barrier and appends them to the master log in canonical
  /// (ts, track, name, cat, ph, dur, args) order, renumbering async span
  /// ids in merged order. Call only with all shards quiesced.
  void merge_epoch();

  /// The merged master trace (valid after the last merge_epoch()).
  const Tracer& tracer() const { return master_; }
  std::string chrome_trace() const;
  std::size_t events() const { return master_.events().size(); }

  /// Spans opened but not yet closed, summed over every domain.
  std::size_t open_spans() const;

  /// Fresh merge of every domain's metrics: shards in index order, then the
  /// coordinator domain.
  MetricsRegistry merged_metrics() const;

  /// Runtime-plane registry (wall-clock sharded-runtime introspection);
  /// excluded from the deterministic capture surface above.
  MetricsRegistry& runtime() { return runtime_; }
  const MetricsRegistry& runtime() const { return runtime_; }

 private:
  struct Entry {
    Domain domain;
    // Domain-local span id -> master span id, for 'b'/'e' renumbering.
    std::map<std::uint64_t, std::uint64_t> span_ids;
  };

  // unique_ptr keeps Domain addresses stable across the vector.
  std::vector<std::unique_ptr<Entry>> shards_;
  Entry coordinator_;
  Tracer master_;
  MetricsRegistry runtime_;
  std::uint64_t next_span_ = 1;
};

}  // namespace vdap::telemetry
