#include "telemetry/export.hpp"

#include <cstdio>
#include <fstream>

namespace vdap::telemetry {

namespace {

// Async begin/end events need a string id; hex matches what Chrome's own
// exporters emit.
std::string span_id(std::uint64_t id) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "0x%llx",
                static_cast<unsigned long long>(id));
  return buf;
}

}  // namespace

std::string chrome_trace_json(const Tracer& tracer) {
  json::Array events;
  events.reserve(tracer.events().size() + tracer.tracks().size());

  // Track names first, as thread_name metadata (tid order = first use).
  for (std::size_t tid = 0; tid < tracer.tracks().size(); ++tid) {
    json::Object meta;
    meta["name"] = "thread_name";
    meta["ph"] = "M";
    meta["pid"] = 1;
    meta["tid"] = static_cast<std::int64_t>(tid);
    json::Object args;
    args["name"] = tracer.tracks()[tid];
    meta["args"] = json::Value(std::move(args));
    events.emplace_back(std::move(meta));
  }

  for (const TraceEvent& ev : tracer.events()) {
    json::Object o;
    o["name"] = ev.name;
    o["cat"] = ev.cat;
    o["ph"] = std::string(1, ev.ph);
    o["ts"] = ev.ts;  // already µs, the unit the format expects
    o["pid"] = 1;
    o["tid"] = static_cast<std::int64_t>(ev.tid);
    if (ev.ph == 'X') o["dur"] = ev.dur;
    if (ev.ph == 'b' || ev.ph == 'e') o["id"] = span_id(ev.id);
    if (ev.ph == 'i') o["s"] = "t";  // instant scoped to its track
    if (!ev.args.empty()) o["args"] = json::Value(ev.args);
    events.emplace_back(std::move(o));
  }

  json::Object root;
  root["displayTimeUnit"] = "ms";
  root["traceEvents"] = json::Value(std::move(events));
  return json::Value(std::move(root)).dump();
}

json::Value metrics_snapshot_json(const MetricsRegistry& metrics,
                                  sim::SimTime now) {
  json::Object root;
  root["t"] = now;

  json::Object counters;
  for (const auto& [name, v] : metrics.counters().all()) counters[name] = v;
  root["counters"] = json::Value(std::move(counters));

  json::Object gauges;
  for (const auto& [name, v] : metrics.gauges()) gauges[name] = v;
  root["gauges"] = json::Value(std::move(gauges));

  json::Object hists;
  for (const auto& [name, h] : metrics.histograms()) {
    json::Object digest;
    digest["count"] = static_cast<std::int64_t>(h.count());
    digest["mean"] = h.mean();
    digest["min"] = h.min();
    digest["max"] = h.max();
    digest["p50"] = h.p50();
    digest["p95"] = h.p95();
    digest["p99"] = h.p99();
    hists[name] = json::Value(std::move(digest));
  }
  root["histograms"] = json::Value(std::move(hists));
  return json::Value(std::move(root));
}

std::string metrics_text_report(const MetricsRegistry& metrics) {
  std::string out;
  if (!metrics.counters().all().empty()) {
    util::TextTable t("telemetry counters");
    t.set_header({"counter", "value"});
    for (const auto& [name, v] : metrics.counters().all()) {
      t.add_row({name, std::to_string(v)});
    }
    out += t.to_string();
  }
  if (!metrics.gauges().empty()) {
    util::TextTable t("telemetry gauges");
    t.set_header({"gauge", "value"});
    for (const auto& [name, v] : metrics.gauges()) {
      t.add_row({name, util::TextTable::num(v, 3)});
    }
    out += t.to_string();
  }
  if (!metrics.histograms().empty()) {
    util::TextTable t("telemetry histograms");
    t.set_header({"histogram", "count", "mean", "p50", "p95", "p99", "max"});
    for (const auto& [name, h] : metrics.histograms()) {
      t.add_row({name, std::to_string(h.count()),
                 util::TextTable::num(h.mean(), 3),
                 util::TextTable::num(h.p50(), 3),
                 util::TextTable::num(h.p95(), 3),
                 util::TextTable::num(h.p99(), 3),
                 util::TextTable::num(h.max(), 3)});
    }
    out += t.to_string();
  }
  return out;
}

bool write_text_file(const std::string& path, std::string_view content) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  return static_cast<bool>(f);
}

}  // namespace vdap::telemetry
