#include "telemetry/shard_report.hpp"

#include <optional>

#include "util/json.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace vdap::telemetry {

namespace {

json::Object row_to_json(const ShardRuntimeRow& r) {
  json::Object o;
  o["shard"] = static_cast<std::int64_t>(r.shard);
  o["epochs"] = static_cast<std::int64_t>(r.epochs);
  o["events"] = static_cast<std::int64_t>(r.events);
  o["busy_s"] = r.busy_s;
  o["wait_s"] = r.wait_s;
  o["queue_peak"] = static_cast<std::int64_t>(r.queue_peak);
  o["wheel_peak"] = static_cast<std::int64_t>(r.wheel_peak);
  o["overflow_peak"] = static_cast<std::int64_t>(r.overflow_peak);
  o["frames"] = static_cast<std::int64_t>(r.frames);
  o["samples"] = static_cast<std::int64_t>(r.samples);
  o["ring_late"] = static_cast<std::int64_t>(r.ring_late);
  o["decode_errors"] = static_cast<std::int64_t>(r.decode_errors);
  o["backlog_peak"] = static_cast<std::int64_t>(r.backlog_peak);
  o["lag_us_peak"] = r.lag_us_peak;
  o["pool_hits"] = static_cast<std::int64_t>(r.pool_hits);
  o["pool_misses"] = static_cast<std::int64_t>(r.pool_misses);
  o["pool_free"] = static_cast<std::int64_t>(r.pool_free);
  o["flight_records"] = static_cast<std::int64_t>(r.flight_records);
  o["flight_dropped"] = static_cast<std::int64_t>(r.flight_dropped);
  return o;
}

}  // namespace

std::string shards_report_jsonl(const std::vector<ShardRuntimeRow>& rows) {
  std::string out;
  for (const ShardRuntimeRow& r : rows) {
    out += json::Value(row_to_json(r)).dump();
    out += '\n';
  }
  return out;
}

std::string shards_report_judged_jsonl(
    const std::vector<ShardRuntimeRow>& rows) {
  std::string out;
  for (const ShardRuntimeRow& r : rows) {
    json::Object o = row_to_json(r);
    o["judgement"] = analysis::judge_shard_runtime(r);
    out += json::Value(std::move(o)).dump();
    out += '\n';
  }
  return out;
}

bool parse_shards_report(std::string_view text,
                         std::vector<ShardRuntimeRow>* rows,
                         std::string* error) {
  rows->clear();
  std::size_t line_no = 0;
  for (const std::string& line : util::split(text, '\n')) {
    ++line_no;
    if (line.empty()) continue;
    std::optional<json::Value> v = json::try_parse(line);
    if (!v || !v->is_object()) {
      if (error != nullptr) {
        *error = "shards report line " + std::to_string(line_no) +
                 ": not a JSON object";
      }
      return false;
    }
    ShardRuntimeRow r;
    r.shard = static_cast<int>(v->get_int("shard"));
    r.epochs = static_cast<std::uint64_t>(v->get_int("epochs"));
    r.events = static_cast<std::uint64_t>(v->get_int("events"));
    r.busy_s = v->get_double("busy_s");
    r.wait_s = v->get_double("wait_s");
    r.queue_peak = static_cast<std::uint64_t>(v->get_int("queue_peak"));
    r.wheel_peak = static_cast<std::uint64_t>(v->get_int("wheel_peak"));
    r.overflow_peak = static_cast<std::uint64_t>(v->get_int("overflow_peak"));
    r.frames = static_cast<std::uint64_t>(v->get_int("frames"));
    r.samples = static_cast<std::uint64_t>(v->get_int("samples"));
    r.ring_late = static_cast<std::uint64_t>(v->get_int("ring_late"));
    r.decode_errors = static_cast<std::uint64_t>(v->get_int("decode_errors"));
    r.backlog_peak = static_cast<std::uint64_t>(v->get_int("backlog_peak"));
    r.lag_us_peak = v->get_int("lag_us_peak");
    r.pool_hits = static_cast<std::uint64_t>(v->get_int("pool_hits"));
    r.pool_misses = static_cast<std::uint64_t>(v->get_int("pool_misses"));
    r.pool_free = static_cast<std::uint64_t>(v->get_int("pool_free"));
    r.flight_records = static_cast<std::uint64_t>(v->get_int("flight_records"));
    r.flight_dropped = static_cast<std::uint64_t>(v->get_int("flight_dropped"));
    rows->push_back(r);
  }
  if (rows->empty()) {
    if (error != nullptr) *error = "shards report: no rows";
    return false;
  }
  return true;
}

std::string shards_report_table(const std::vector<ShardRuntimeRow>& rows) {
  util::TextTable table("sharded runtime (wall-clock plane — not part of the deterministic capture)");
  table.set_header({"shard", "epochs", "events", "busy s", "wait s", "queue^",
                    "wheel^", "ovfl^", "frames", "late", "backlog^", "lag ms^",
                    "pool hit%", "free", "flight", "judgement"});
  for (const ShardRuntimeRow& r : rows) {
    const std::uint64_t pool_total = r.pool_hits + r.pool_misses;
    const double hit_pct =
        pool_total == 0 ? 0.0
                        : 100.0 * static_cast<double>(r.pool_hits) /
                              static_cast<double>(pool_total);
    table.add_row({std::to_string(r.shard), std::to_string(r.epochs),
                   std::to_string(r.events), util::TextTable::num(r.busy_s, 3),
                   util::TextTable::num(r.wait_s, 3),
                   std::to_string(r.queue_peak), std::to_string(r.wheel_peak),
                   std::to_string(r.overflow_peak), std::to_string(r.frames),
                   std::to_string(r.ring_late), std::to_string(r.backlog_peak),
                   util::TextTable::num(static_cast<double>(r.lag_us_peak) / 1000.0, 1),
                   pool_total == 0 ? "-" : util::TextTable::num(hit_pct, 1),
                   std::to_string(r.pool_free),
                   r.flight_records == 0 && r.flight_dropped == 0
                       ? "-"
                       : std::to_string(r.flight_records),
                   analysis::judge_shard_runtime(r)});
  }
  return table.to_string();
}

}  // namespace vdap::telemetry

namespace vdap::telemetry::analysis {

std::string judge_shard_runtime(const ShardRuntimeRow& row) {
  std::string verdict;
  auto add = [&verdict](std::string_view v) {
    if (!verdict.empty()) verdict += ',';
    verdict += v;
  };
  // Barrier imbalance only means anything once the shard accumulated enough
  // wall time to measure; sub-10ms runs are all scheduling noise.
  const double wall = row.busy_s + row.wait_s;
  if (wall > 0.010 && row.wait_s > 0.25 * wall) add("imbalanced");
  if (row.overflow_peak > 0) add("overflow");
  if (row.ring_late > 0) add("backpressure");
  if (row.decode_errors > 0) add("decode-errors");
  if (row.flight_dropped > 0) add("flight-drops");
  return verdict.empty() ? "ok" : verdict;
}

}  // namespace vdap::telemetry::analysis
