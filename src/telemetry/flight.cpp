#include "telemetry/flight.hpp"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "telemetry/telemetry.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"

namespace vdap::telemetry {

namespace fs = std::filesystem;

namespace {

constexpr std::uint64_t kFnvOffset = 14695981039346656037ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_bytes(std::uint64_t h, const void* data, std::size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

void copy_field(char* dst, std::size_t cap, std::string_view src) {
  const std::size_t n = std::min(src.size(), cap - 1);
  std::memcpy(dst, src.data(), n);
  // The tail (including the terminator) is already zero: the caller
  // memset the whole record, which is what makes memcmp a content
  // comparison.
}

void put_u32(std::string& out, std::uint32_t v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

void put_i32(std::string& out, std::int32_t v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

void put_u64(std::string& out, std::uint64_t v) {
  char b[sizeof v];
  std::memcpy(b, &v, sizeof v);
  out.append(b, sizeof v);
}

}  // namespace

std::string_view flight_kind_name(std::uint32_t kind) {
  switch (static_cast<FlightKind>(kind)) {
    case FlightKind::kMetric: return "metric";
    case FlightKind::kGauge: return "gauge";
    case FlightKind::kObserve: return "observe";
    case FlightKind::kSpanBegin: return "span-begin";
    case FlightKind::kSpanEnd: return "span-end";
    case FlightKind::kComplete: return "complete";
    case FlightKind::kInstant: return "instant";
    case FlightKind::kCounter: return "counter";
    case FlightKind::kHealth: return "health";
    case FlightKind::kFault: return "fault";
    case FlightKind::kIncident: return "incident";
    case FlightKind::kRuntime: return "runtime";
  }
  return "?";
}

FlightRecord make_flight_record(FlightKind kind, sim::SimTime ts,
                                std::string_view name, std::string_view track,
                                std::string_view detail, std::int64_t value,
                                double fvalue) {
  FlightRecord r;
  std::memset(&r, 0, sizeof r);
  r.ts = ts;
  r.value = value;
  r.fvalue = fvalue;
  r.kind = static_cast<std::uint32_t>(kind);
  copy_field(r.name, sizeof r.name, name);
  copy_field(r.track, sizeof r.track, track);
  copy_field(r.detail, sizeof r.detail, detail);
  return r;
}

bool flight_record_less(const FlightRecord& a, const FlightRecord& b) {
  if (a.ts != b.ts) return a.ts < b.ts;
  return std::memcmp(&a, &b, sizeof a) < 0;
}

// --- FlightRing -------------------------------------------------------------

void FlightRing::reset_capacity(std::size_t capacity) {
  slots_.assign(capacity, FlightRecord{});
  appended_ = 0;
  dropped_total_ = 0;
  drained_total_ = 0;
}

std::size_t FlightRing::size() const {
  const std::uint64_t cap = slots_.size();
  return static_cast<std::size_t>(appended_ < cap ? appended_ : cap);
}

std::uint64_t FlightRing::overwritten() const {
  const std::uint64_t cap = slots_.size();
  return appended_ > cap ? appended_ - cap : 0;
}

void FlightRing::snapshot_into(std::vector<FlightRecord>& out) const {
  const std::uint64_t cap = slots_.size();
  const std::size_t count = size();
  const std::uint64_t start = appended_ - count;
  for (std::size_t i = 0; i < count; ++i) {
    out.push_back(slots_[static_cast<std::size_t>((start + i) % cap)]);
  }
}

void FlightRing::drain_into(std::vector<FlightRecord>& out) {
  snapshot_into(out);
  dropped_total_ += overwritten();
  drained_total_ += size();
  appended_ = 0;
}

// --- FlightRecorder ---------------------------------------------------------

FlightRecorder::FlightRecorder(int domains)
    : FlightRecorder(domains, Options()) {}

FlightRecorder::FlightRecorder(int domains, Options opts)
    : opts_(std::move(opts)),
      rings_(static_cast<std::size_t>(std::max(domains, 1))),
      master_(opts_.master_capacity),
      runtime_(opts_.runtime_capacity) {
  for (FlightRing& r : rings_) {
    r.reset_capacity(opts_.scratch_capacity);
    r.set_owner(this);
    r.mirror_metrics_ = opts_.mirror_metrics;
    r.mirror_spans_ = opts_.mirror_spans;
    r.trigger_on_fault_ = opts_.trigger_on_fault;
    r.trigger_on_breach_ = opts_.trigger_on_breach;
  }
}

void FlightRecorder::set_context(std::uint64_t seed, std::string plan,
                                 json::Value config) {
  seed_ = seed;
  plan_ = std::move(plan);
  config_ = std::move(config);
}

void FlightRecorder::set_manifest_hook(
    std::function<void(json::Object&)> hook) {
  manifest_hook_ = std::move(hook);
}

std::uint64_t FlightRecorder::scratch_dropped() const {
  std::uint64_t total = 0;
  for (const FlightRing& r : rings_) total += r.dropped_total();
  return total;
}

void FlightRecorder::fold_barrier(sim::SimTime now) {
  fold_scratch_.clear();
  for (FlightRing& r : rings_) r.drain_into(fold_scratch_);
  std::stable_sort(fold_scratch_.begin(), fold_scratch_.end(),
                   flight_record_less);
  for (const FlightRecord& rec : fold_scratch_) master_.append(rec);
  folded_records_ += fold_scratch_.size();

  const int pending = pending_.exchange(0, std::memory_order_relaxed);
  if (pending <= 0) return;
  triggers_seen_ += static_cast<std::uint64_t>(pending);
  // Primary trigger: first kIncident among the records folded at THIS
  // barrier, in canonical order — the same record on every geometry.
  const FlightRecord* trigger = nullptr;
  for (const FlightRecord& rec : fold_scratch_) {
    if (rec.kind == static_cast<std::uint32_t>(FlightKind::kIncident)) {
      trigger = &rec;
      break;
    }
  }
  // The kIncident record can be overwritten in a too-small scratch ring
  // before the barrier; the pending counter still demands a bundle.
  const FlightRecord fallback = make_flight_record(
      FlightKind::kIncident, now, "trigger-overwritten", "incident", "", 0,
      0.0);
  make_bundle(trigger != nullptr ? *trigger : fallback);
}

const FlightRecorder::Bundle* FlightRecorder::incident_now(
    sim::SimTime now, std::string_view reason, std::string_view detail) {
  FlightRing& coord = rings_.back();
  coord.set_time_hint(now);
  coord.append(make_flight_record(FlightKind::kIncident, now, reason,
                                  "incident", detail, 0, 0.0));
  request_snapshot();
  const std::size_t before = bundles_.size();
  fold_barrier(now);
  return bundles_.size() > before ? &bundles_.back() : nullptr;
}

std::string FlightRecorder::serialize_rings() const {
  std::vector<FlightRecord> snap;
  snap.reserve(master_.size());
  master_.snapshot_into(snap);

  std::string out;
  out.reserve(16 + 40 + snap.size() * sizeof(FlightRecord));
  out += "VFR1";
  put_u32(out, 1);                               // version
  put_u32(out, sizeof(FlightRecord));            // record size
  put_u32(out, 1);                               // section count
  put_i32(out, -1);                              // master section
  put_u32(out, 0);                               // reserved
  put_u64(out, master_.appended());
  put_u64(out, 0);                               // packed: head = 0
  put_u64(out, snap.size());
  std::uint64_t check = kFnvOffset;
  for (const FlightRecord& rec : snap) {
    check = fnv_bytes(check, &rec, sizeof rec);
    out.append(reinterpret_cast<const char*>(&rec), sizeof rec);
  }
  put_u64(out, check);  // trailer, matching the crash-path stream order
  return out;
}

std::string FlightRecorder::runtime_jsonl() const {
  std::vector<FlightRecord> snap;
  runtime_.snapshot_into(snap);
  std::string out;
  for (const FlightRecord& rec : snap) {
    json::Object o;
    o["ts"] = rec.ts;
    o["kind"] = std::string(flight_kind_name(rec.kind));
    o["name"] = std::string(rec.name);
    o["track"] = std::string(rec.track);
    o["detail"] = std::string(rec.detail);
    o["value"] = rec.value;
    o["fvalue"] = rec.fvalue;
    out += json::Value(std::move(o)).dump();
    out += '\n';
  }
  return out;
}

std::string FlightRecorder::manifest_json(const FlightRecord* trigger) const {
  json::Object m;
  m["format"] = "vdap-incident-1";
  m["bundle_seq"] = static_cast<std::int64_t>(bundles_.size()) + 1;
  m["seed"] = seed_;
  m["plan"] = plan_;
  m["config"] = config_;
  if (trigger != nullptr) {
    json::Object t;
    t["kind"] = std::string(flight_kind_name(trigger->kind));
    t["ts"] = trigger->ts;
    t["name"] = std::string(trigger->name);
    t["track"] = std::string(trigger->track);
    t["detail"] = std::string(trigger->detail);
    t["value"] = trigger->value;
    m["trigger"] = std::move(t);
  }
  json::Object rec;
  rec["master_records"] = static_cast<std::int64_t>(master_.size());
  rec["master_appended"] = master_.appended();
  rec["master_overwritten"] = master_.overwritten();
  rec["folded"] = folded_records_;
  rec["scratch_dropped"] = scratch_dropped();
  rec["triggers_seen"] = triggers_seen_;
  m["records"] = std::move(rec);

  std::vector<FlightRecord> snap;
  master_.snapshot_into(snap);
  json::Object kinds;
  for (const FlightRecord& r : snap) {
    std::string k(flight_kind_name(r.kind));
    auto it = kinds.find(k);
    if (it == kinds.end()) {
      kinds[k] = std::int64_t{1};
    } else {
      it->second = it->second.as_int() + 1;
    }
  }
  m["kinds"] = std::move(kinds);
  if (manifest_hook_) manifest_hook_(m);
  return json::Value(std::move(m)).pretty() + "\n";
}

const FlightRecorder::Bundle* FlightRecorder::make_bundle(
    const FlightRecord& trigger) {
  if (static_cast<int>(bundles_.size()) >= opts_.max_bundles) return nullptr;
  Bundle b;
  b.id = util::format("incident-%03d-t%lld",
                      static_cast<int>(bundles_.size()) + 1,
                      static_cast<long long>(trigger.ts));
  b.manifest = manifest_json(&trigger);
  b.rings = serialize_rings();
  b.runtime = runtime_jsonl();
  if (!opts_.dir.empty()) {
    const fs::path dir = fs::path(opts_.dir) / b.id;
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (!ec) {
      const auto dump = [&dir](const char* file, const std::string& bytes) {
        std::ofstream out(dir / file, std::ios::binary);
        out.write(bytes.data(),
                  static_cast<std::streamsize>(bytes.size()));
      };
      dump("manifest.json", b.manifest);
      dump("rings.vfr", b.rings);
      dump("runtime.jsonl", b.runtime);
      b.dir = dir.string();
    }
  }
  bundles_.push_back(std::move(b));
  return &bundles_.back();
}

// --- recording helpers ------------------------------------------------------

void flight_metric(std::string_view name, std::int64_t by) {
  FlightRing* r = internal::tls_flight;
  if (r == nullptr || !r->mirror_metrics()) return;
  r->append(make_flight_record(FlightKind::kMetric, r->now(), name, {}, {},
                               by, 0.0));
}

void flight_observe(std::string_view name, double value) {
  FlightRing* r = internal::tls_flight;
  if (r == nullptr || !r->mirror_metrics()) return;
  r->append(make_flight_record(FlightKind::kObserve, r->now(), name, {}, {},
                               0, value));
}

void flight_gauge(std::string_view name, double value) {
  FlightRing* r = internal::tls_flight;
  if (r == nullptr || !r->mirror_metrics()) return;
  r->append(make_flight_record(FlightKind::kGauge, r->now(), name, {}, {}, 0,
                               value));
}

void flight_span(FlightKind kind, sim::SimTime ts, std::string_view cat,
                 std::string_view name, std::string_view track,
                 std::int64_t value, double fvalue) {
  FlightRing* r = internal::tls_flight;
  if (r == nullptr || !r->mirror_spans()) return;
  // Deliberately no span id: ids are per-domain counters whose values
  // depend on placement; names + timestamps are the invariant content.
  r->append(make_flight_record(kind, ts, name, track, cat, value, fvalue));
}

void flight_health(sim::SimTime ts, std::string_view service,
                   std::string_view tier, bool breach, double observed) {
  FlightRing* r = internal::tls_flight;
  if (r == nullptr) return;
  r->append(make_flight_record(FlightKind::kHealth, ts, service,
                               breach ? "breach" : "recover", tier,
                               breach ? 1 : 0, observed));
  if (breach && r->trigger_on_breach()) {
    r->append(make_flight_record(FlightKind::kIncident, ts, "slo-breach",
                                 "incident", service, 0, 0.0));
    if (r->owner() != nullptr) r->owner()->request_snapshot();
  }
}

void flight_fault(sim::SimTime ts, std::string_view name,
                  std::string_view target, std::string_view kind,
                  bool begin) {
  FlightRing* r = internal::tls_flight;
  if (r == nullptr) return;
  r->append(make_flight_record(FlightKind::kFault, ts, name, target, kind,
                               begin ? 1 : 0, 0.0));
  if (begin && r->trigger_on_fault()) {
    r->append(make_flight_record(FlightKind::kIncident, ts, "fault",
                                 "incident", name, 0, 0.0));
    if (r->owner() != nullptr) r->owner()->request_snapshot();
  }
}

void incident(std::string_view reason, std::string_view detail) {
  FlightRing* r = internal::tls_flight;
  if (r == nullptr) return;
  r->append(make_flight_record(FlightKind::kIncident, r->now(), reason,
                               "incident", detail, 0, 0.0));
  if (r->owner() != nullptr) r->owner()->request_snapshot();
}

// --- parse-back -------------------------------------------------------------

FlightParse parse_flight_rings(std::string_view bytes) {
  FlightParse p;
  const auto fail = [&p](std::string msg) -> FlightParse& {
    p.ok = false;
    p.error = std::move(msg);
    p.sections.clear();
    return p;
  };

  std::size_t off = 0;
  const auto remaining = [&] { return bytes.size() - off; };
  const auto read_u32 = [&] {
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + off, sizeof v);
    off += sizeof v;
    return v;
  };
  const auto read_u64 = [&] {
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + off, sizeof v);
    off += sizeof v;
    return v;
  };

  if (remaining() < 16) return fail("truncated header");
  if (bytes.substr(0, 4) != "VFR1") return fail("bad magic (not a VFR1 file)");
  off = 4;
  p.version = read_u32();
  if (p.version != 1) {
    return fail(util::format("unsupported version %u", p.version));
  }
  const std::uint32_t record_size = read_u32();
  if (record_size != sizeof(FlightRecord)) {
    return fail(util::format("record size %u != %zu (bit flip?)", record_size,
                             sizeof(FlightRecord)));
  }
  const std::uint32_t section_count = read_u32();
  if (section_count > 64) {
    return fail(util::format("hostile section count %u", section_count));
  }

  for (std::uint32_t s = 0; s < section_count; ++s) {
    if (remaining() < 32) return fail("truncated section header");
    FlightSection sec;
    sec.domain = static_cast<std::int32_t>(read_u32());
    read_u32();  // reserved
    sec.appended = read_u64();
    const std::uint64_t head = read_u64();
    const std::uint64_t count = read_u64();
    if (count > (1u << 22)) {
      return fail(util::format("hostile record count %llu",
                               static_cast<unsigned long long>(count)));
    }
    // Budget check BEFORE any allocation: hostile counts cannot OOM.
    const std::uint64_t body = count * sizeof(FlightRecord);
    if (remaining() < body + 8) return fail("truncated record data");
    if (head >= std::max<std::uint64_t>(count, 1)) {
      return fail("corrupt head index");
    }
    sec.head = head;

    std::uint64_t check = kFnvOffset;
    check = fnv_bytes(check, bytes.data() + off, static_cast<std::size_t>(body));
    const char* data = bytes.data() + off;
    off += static_cast<std::size_t>(body);
    const std::uint64_t trailer = read_u64();
    if (trailer != check) {
      return fail("section checksum mismatch (bit flip?)");
    }

    sec.records.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t i = 0; i < count; ++i) {
      // Crash sections are raw storage order; rotate to oldest-first.
      const std::uint64_t slot = (head + i) % std::max<std::uint64_t>(count, 1);
      FlightRecord rec;
      std::memcpy(&rec, data + slot * sizeof rec, sizeof rec);
      if (rec.kind >= kFlightKindCount) {
        // A slot torn by the crash handler's racy read: skip, count.
        ++sec.corrupt_skipped;
        continue;
      }
      rec.name[sizeof rec.name - 1] = '\0';
      rec.track[sizeof rec.track - 1] = '\0';
      rec.detail[sizeof rec.detail - 1] = '\0';
      sec.records.push_back(rec);
    }
    p.sections.push_back(std::move(sec));
  }
  if (remaining() != 0) return fail("trailing bytes after last section");
  p.ok = true;
  return p;
}

std::string incident_report(const json::Value& manifest,
                            const FlightParse& rings) {
  std::string out;
  out += "incident report\n";
  out += util::format("  plan: %s  seed: %lld\n",
                      manifest.get_string("plan", "?").c_str(),
                      static_cast<long long>(manifest.get_int("seed", 0)));
  if (const json::Value* t = manifest.find("trigger")) {
    out += util::format("  trigger: %s \"%s\" (%s) at t=%.3fs\n",
                        t->get_string("kind", "?").c_str(),
                        t->get_string("name", "").c_str(),
                        t->get_string("detail", "").c_str(),
                        sim::to_seconds(t->get_int("ts", 0)));
  }
  if (manifest.get_bool("crash", false)) {
    out += util::format("  crash: signal %lld (bundle written by the fatal-"
                        "signal handler; rings are raw snapshots)\n",
                        static_cast<long long>(manifest.get_int("signal", 0)));
  }
  if (const json::Value* rec = manifest.find("records")) {
    out += util::format(
        "  records: master=%lld folded=%lld scratch_dropped=%lld\n",
        static_cast<long long>(rec->get_int("master_records", 0)),
        static_cast<long long>(rec->get_int("folded", 0)),
        static_cast<long long>(rec->get_int("scratch_dropped", 0)));
  }

  std::vector<FlightRecord> all;
  std::uint64_t corrupt = 0;
  for (const FlightSection& sec : rings.sections) {
    all.insert(all.end(), sec.records.begin(), sec.records.end());
    corrupt += sec.corrupt_skipped;
  }
  std::stable_sort(all.begin(), all.end(), flight_record_less);

  std::map<std::string, std::int64_t> by_kind;
  for (const FlightRecord& r : all) {
    ++by_kind[std::string(flight_kind_name(r.kind))];
  }
  util::TextTable kinds("records by kind");
  kinds.set_header({"kind", "count"});
  for (const auto& [k, n] : by_kind) {
    kinds.add_row({k, util::format("%lld", static_cast<long long>(n))});
  }
  if (corrupt > 0) {
    kinds.add_row({"(corrupt, skipped)",
                   util::format("%llu",
                                static_cast<unsigned long long>(corrupt))});
  }
  out += '\n';
  out += kinds.to_string();

  // Blame: kHealth records carry the critical-path tier attribution the
  // SLO evaluator computed (§6d); kFault records carry their target.
  std::map<std::string, std::pair<std::int64_t, std::int64_t>> blame;
  for (const FlightRecord& r : all) {
    if (r.kind == static_cast<std::uint32_t>(FlightKind::kHealth)) {
      auto& [breaches, events] = blame["tier " + std::string(r.detail)];
      events += 1;
      if (r.value != 0) breaches += 1;
    } else if (r.kind == static_cast<std::uint32_t>(FlightKind::kFault)) {
      auto& [begins, events] = blame["fault " + std::string(r.track)];
      events += 1;
      if (r.value != 0) begins += 1;
    }
  }
  if (!blame.empty()) {
    util::TextTable bt("blame");
    bt.set_header({"cause", "onsets", "events"});
    for (const auto& [who, counts] : blame) {
      bt.add_row({who,
                  util::format("%lld", static_cast<long long>(counts.first)),
                  util::format("%lld",
                               static_cast<long long>(counts.second))});
    }
    out += '\n';
    out += bt.to_string();
  }

  util::TextTable tl("timeline");
  tl.set_header({"t_ms", "kind", "track", "name", "detail", "blame", "value"});
  for (const FlightRecord& r : all) {
    std::string blamed;
    if (r.kind == static_cast<std::uint32_t>(FlightKind::kHealth)) {
      blamed = r.detail;
    } else if (r.kind == static_cast<std::uint32_t>(FlightKind::kFault)) {
      blamed = r.track;
    }
    std::string value;
    if (r.fvalue != 0.0) {
      value = util::TextTable::num(r.fvalue, 3);
    } else if (r.value != 0) {
      value = util::format("%lld", static_cast<long long>(r.value));
    }
    tl.add_row({util::TextTable::num(sim::to_millis(r.ts), 3),
                std::string(flight_kind_name(r.kind)), r.track, r.name,
                r.detail, blamed, value});
  }
  out += '\n';
  out += tl.to_string();
  return out;
}

std::string render_incident_dir(const std::string& dir, std::string* error) {
  const auto set_error = [error](std::string msg) {
    if (error != nullptr) *error = std::move(msg);
  };
  const auto slurp = [](const fs::path& p, std::string* out) {
    std::ifstream in(p, std::ios::binary);
    if (!in) return false;
    std::ostringstream ss;
    ss << in.rdbuf();
    *out = ss.str();
    return true;
  };

  std::string manifest_bytes;
  if (!slurp(fs::path(dir) / "manifest.json", &manifest_bytes)) {
    set_error("missing manifest.json in " + dir);
    return "";
  }
  std::optional<json::Value> manifest = json::try_parse(manifest_bytes);
  if (!manifest.has_value()) {
    set_error("manifest.json: malformed JSON (truncated bundle?)");
    return "";
  }
  std::string ring_bytes;
  if (!slurp(fs::path(dir) / "rings.vfr", &ring_bytes)) {
    set_error("missing rings.vfr in " + dir);
    return "";
  }
  FlightParse rings = parse_flight_rings(ring_bytes);
  if (!rings.ok) {
    set_error("rings.vfr: " + rings.error);
    return "";
  }
  return incident_report(*manifest, rings);
}

// --- crash dump -------------------------------------------------------------

namespace {

constexpr int kCrashSignals[] = {SIGSEGV, SIGABRT, SIGBUS, SIGFPE, SIGILL};
constexpr int kNumCrashSignals = 5;

// All fields are written at arm time (before any signal can dispatch to
// the handler) and only read afterwards; the handler itself touches
// nothing but these buffers and the recorder's preallocated rings.
struct CrashState {
  std::atomic<FlightRecorder*> recorder{nullptr};
  std::atomic<int> busy{0};
  std::string manifest_path;
  std::string rings_path;
  std::string manifest_head;  // '{"crash":true,"signal":'
  std::string manifest_tail;  // ',...deterministic context...}\n'
  struct sigaction old_actions[kNumCrashSignals];
  bool armed = false;
};
CrashState g_crash;

void write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w <= 0) {
      if (w < 0 && errno == EINTR) continue;
      return;  // best effort: a short bundle still parses up to the cut
    }
    p += static_cast<std::size_t>(w);
    n -= static_cast<std::size_t>(w);
  }
}

int format_int(char* buf, long v) {
  char tmp[24];
  int n = 0;
  if (v < 0) v = -v;  // signals are positive; belt and braces
  if (v == 0) tmp[n++] = '0';
  while (v > 0 && n < 24) {
    tmp[n++] = static_cast<char>('0' + v % 10);
    v /= 10;
  }
  for (int i = 0; i < n; ++i) buf[i] = tmp[n - 1 - i];
  return n;
}

void crash_write_section(int fd, const FlightRing& ring, std::int32_t domain) {
  const std::uint64_t appended = ring.raw_appended();
  const std::uint64_t cap = ring.capacity();
  const std::uint64_t count = appended < cap ? appended : cap;
  const std::uint64_t head = (cap != 0 && appended >= cap) ? appended % cap : 0;
  write_all(fd, &domain, sizeof domain);
  const std::uint32_t reserved = 0;
  write_all(fd, &reserved, sizeof reserved);
  write_all(fd, &appended, sizeof appended);
  write_all(fd, &head, sizeof head);
  write_all(fd, &count, sizeof count);
  // Stream each (possibly racing) slot exactly once: copy to the stack,
  // fold it into the checksum, write it. The checksum is a TRAILER so
  // this single pass is self-consistent even when another thread is
  // mid-append — a torn slot is checksum-valid garbage the parser skips
  // by kind validation.
  std::uint64_t check = kFnvOffset;
  for (std::uint64_t i = 0; i < count; ++i) {
    FlightRecord rec;
    std::memcpy(&rec, ring.raw_data() + i, sizeof rec);
    check = fnv_bytes(check, &rec, sizeof rec);
    write_all(fd, &rec, sizeof rec);
  }
  write_all(fd, &check, sizeof check);
}

void flight_crash_handler(int sig) {
  FlightRecorder* rec = g_crash.recorder.load(std::memory_order_relaxed);
  if (rec != nullptr && g_crash.busy.exchange(1) == 0) {
    int fd = ::open(g_crash.manifest_path.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      write_all(fd, g_crash.manifest_head.data(), g_crash.manifest_head.size());
      char num[24];
      const int n = format_int(num, sig);
      write_all(fd, num, static_cast<std::size_t>(n));
      write_all(fd, g_crash.manifest_tail.data(), g_crash.manifest_tail.size());
      ::close(fd);
    }
    fd = ::open(g_crash.rings_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC,
                0644);
    if (fd >= 0) {
      write_all(fd, "VFR1", 4);
      const std::uint32_t version = 1;
      const std::uint32_t record_size = sizeof(FlightRecord);
      const std::uint32_t sections =
          static_cast<std::uint32_t>(rec->domains()) + 2;
      write_all(fd, &version, sizeof version);
      write_all(fd, &record_size, sizeof record_size);
      write_all(fd, &sections, sizeof sections);
      for (int i = 0; i < rec->domains(); ++i) {
        crash_write_section(fd, rec->ring(i), i);
      }
      crash_write_section(fd, rec->master_ring(), -1);
      crash_write_section(fd, rec->runtime_ring(), -2);
      ::close(fd);
    }
  }
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

}  // namespace

void FlightRecorder::arm_crash_dump() {
  if (opts_.dir.empty()) {
    throw std::invalid_argument(
        "FlightRecorder::arm_crash_dump: Options::dir must be set");
  }
  disarm_crash_dump();
  const fs::path dir = fs::path(opts_.dir) / "incident-crash";
  fs::create_directories(dir);
  g_crash.manifest_path = (dir / "manifest.json").string();
  g_crash.rings_path = (dir / "rings.vfr").string();
  g_crash.manifest_head = "{\"crash\":true,\"signal\":";
  json::Object rest;
  rest["format"] = "vdap-incident-1";
  rest["seed"] = seed_;
  rest["plan"] = plan_;
  rest["config"] = config_;
  std::string rest_json = json::Value(std::move(rest)).dump();
  // '{"format":...}' -> ',"format":...}\n' appended after the signal.
  rest_json.front() = ',';
  g_crash.manifest_tail = rest_json + "\n";
  g_crash.busy.store(0, std::memory_order_relaxed);
  g_crash.recorder.store(this, std::memory_order_release);
  struct sigaction action;
  std::memset(&action, 0, sizeof action);
  action.sa_handler = &flight_crash_handler;
  sigemptyset(&action.sa_mask);
  for (int i = 0; i < kNumCrashSignals; ++i) {
    ::sigaction(kCrashSignals[i], &action, &g_crash.old_actions[i]);
  }
  g_crash.armed = true;
}

void FlightRecorder::disarm_crash_dump() {
  if (!g_crash.armed) return;
  for (int i = 0; i < kNumCrashSignals; ++i) {
    ::sigaction(kCrashSignals[i], &g_crash.old_actions[i], nullptr);
  }
  g_crash.recorder.store(nullptr, std::memory_order_release);
  g_crash.armed = false;
}

FlightRecorder::~FlightRecorder() {
  if (g_crash.recorder.load(std::memory_order_relaxed) == this) {
    disarm_crash_dump();
  }
}

}  // namespace vdap::telemetry
