#include "telemetry/domains.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "telemetry/export.hpp"
#include "util/json.hpp"

namespace vdap::telemetry {

namespace {

// One drained event staged for the canonical sort. `track` points into the
// source tracer's interned track table (stable for the duration of the
// merge — draining never interns).
struct Staged {
  TraceEvent ev;
  const std::string* track = nullptr;
  int entry = 0;  // 0..shards-1, then shards for the coordinator
};

// Canonical content order: (ts, track, name, cat, ph, dur, args). This is
// a total order on everything the exporter serializes *except* the async
// span id, which is renumbered in merged order after the sort — so the
// merged log depends only on the event multiset, not on which shard
// recorded what. Events identical in every compared field keep their
// concatenation order (stable_sort): only such content-twins can permute
// span ids across geometries, which §6h excludes by contract
// (entity-partitioned instrumentation distinguishes twins by track/args).
bool canonical_less(const Staged& a, const Staged& b) {
  if (a.ev.ts != b.ev.ts) return a.ev.ts < b.ev.ts;
  if (int c = a.track->compare(*b.track); c != 0) return c < 0;
  if (int c = a.ev.name.compare(b.ev.name); c != 0) return c < 0;
  if (int c = a.ev.cat.compare(b.ev.cat); c != 0) return c < 0;
  if (a.ev.ph != b.ev.ph) return a.ev.ph < b.ev.ph;
  if (a.ev.dur != b.ev.dur) return a.ev.dur < b.ev.dur;
  if (a.ev.args.empty() && b.ev.args.empty()) return false;
  // json::Object is a std::map, so dumping is itself deterministic. Args
  // comparisons only run for events tied on all cheaper fields.
  return json::Value(a.ev.args).dump() < json::Value(b.ev.args).dump();
}

}  // namespace

DomainSet::DomainSet(int shards) {
  if (shards < 1) throw std::invalid_argument("DomainSet: shards must be >= 1");
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Entry>());
  }
}

void DomainSet::merge_epoch() {
  std::vector<Staged> batch;
  auto drain = [&batch](Entry& entry, int index) {
    Tracer& t = entry.domain.tracer();
    const std::vector<std::string>& tracks = t.tracks();
    for (TraceEvent& ev : t.take_events()) {
      Staged s;
      s.track = &tracks[ev.tid];
      s.entry = index;
      s.ev = std::move(ev);
      batch.push_back(std::move(s));
    }
  };
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    drain(*shards_[i], static_cast<int>(i));
  }
  drain(coordinator_, static_cast<int>(shards_.size()));
  if (batch.empty()) return;

  std::stable_sort(batch.begin(), batch.end(), canonical_less);

  for (Staged& s : batch) {
    std::map<std::uint64_t, std::uint64_t>& ids =
        s.entry < static_cast<int>(shards_.size())
            ? shards_[static_cast<std::size_t>(s.entry)]->span_ids
            : coordinator_.span_ids;
    TraceEvent ev = std::move(s.ev);
    ev.tid = master_.track(*s.track);
    if (ev.ph == 'b') {
      std::uint64_t master_id = next_span_++;
      ids[ev.id] = master_id;
      ev.id = master_id;
    } else if (ev.ph == 'e') {
      auto it = ids.find(ev.id);
      if (it == ids.end()) continue;  // begin was recorded while unbound
      ev.id = it->second;
      ids.erase(it);
    }
    master_.absorb(std::move(ev));
  }
}

std::string DomainSet::chrome_trace() const { return chrome_trace_json(master_); }

std::size_t DomainSet::open_spans() const {
  std::size_t total = 0;
  for (const std::unique_ptr<Entry>& e : shards_) {
    total += e->domain.tracer().open_spans();
  }
  total += coordinator_.domain.tracer().open_spans();
  return total;
}

MetricsRegistry DomainSet::merged_metrics() const {
  MetricsRegistry out;
  for (const std::unique_ptr<Entry>& e : shards_) out.merge(e->domain.metrics());
  out.merge(coordinator_.domain.metrics());
  return out;
}

}  // namespace vdap::telemetry
