// Platform-wide telemetry: structured span tracing timestamped on the sim
// clock plus a process-wide metrics registry (counters / gauges /
// histograms with label support).
//
// Design constraints (DESIGN.md §6c):
//   * Determinism — telemetry must never perturb a run. No wall-clock
//     reads, no RNG draws; every event is timestamped by the caller with
//     sim::Simulator::now(). Two runs of the same (seed, plan) therefore
//     produce byte-identical exported traces — the `trace` test suite
//     enforces this.
//   * Near-zero disabled cost — every instrumentation site is guarded by
//     `if (telemetry::on())`, a single branch on a thread-local pointer; no
//     argument marshalling, no allocation, no virtual dispatch on the cold
//     path. Each simulator shard is single-threaded, so no atomics are
//     needed inside a Domain.
//   * Domain-scoped capture — instrumentation records into the Domain
//     (tracer + registry pair) bound to the *current thread*. A legacy
//     telemetry::Session (session.hpp) binds the process-global domain for
//     one single-threaded run; sim::ShardedSimulator binds one Domain per
//     worker shard for the duration of each epoch and merges them
//     deterministically at the barrier (domains.hpp, DESIGN.md §6h).
//
// The trace model follows the Chrome trace-event format so exports load
// directly into Perfetto / chrome://tracing (see export.hpp):
//   * complete slices ('X'): an operation whose duration is known at
//     record time (a network transfer, a task execution);
//   * async span pairs ('b'/'e'): operations that overlap freely on one
//     track (service runs, fault windows, sync batches) — begin() returns
//     an id that end() closes, and open_spans() counts the unclosed ones
//     (the chaos suites assert it drains to zero);
//   * instants ('i'): decision points (offload choice, failover, hang);
//   * counter samples ('C'): numeric series (backlog depth, bandwidth).
#pragma once

#include <cmath>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace vdap::telemetry {

/// One recorded trace event. `tid` indexes Tracer::tracks().
struct TraceEvent {
  char ph = 'X';            // 'X','b','e','i','C'
  sim::SimTime ts = 0;      // µs on the sim clock
  sim::SimDuration dur = 0; // 'X' only
  std::uint64_t id = 0;     // 'b'/'e' async span id, 0 otherwise
  std::uint32_t tid = 0;    // track index
  std::string cat;          // category: "task","offload","ddi","net","fault",...
  std::string name;
  json::Object args;        // std::map => deterministic serialization order
};

/// Append-only event log with interned track names. All methods assume the
/// caller already checked telemetry::on() — the Tracer itself never
/// branches on the enabled flag.
class Tracer {
 public:
  /// Interns a track name ("dsf", "net/cloud", "faults/rsu-flap", ...) and
  /// returns its stable index. First-use order is deterministic because
  /// the simulation is.
  std::uint32_t track(std::string_view name);

  /// Records a complete slice: [ts, ts+dur) on `track`.
  void complete(sim::SimTime ts, sim::SimDuration dur, std::string_view cat,
                std::string_view name, std::string_view track,
                json::Object args = {});

  /// Opens an async span; returns the id end() closes. Spans on one track
  /// may overlap freely (they render as async tracks in Perfetto).
  std::uint64_t begin(sim::SimTime ts, std::string_view cat,
                      std::string_view name, std::string_view track,
                      json::Object args = {});

  /// Closes an async span; extra args are attached to the end event.
  /// Unknown / already-closed ids are ignored (id 0 — a begin() recorded
  /// while telemetry was off — is always safe to pass).
  void end(sim::SimTime ts, std::uint64_t id, json::Object args = {});

  /// Records an instant event (a point-in-time decision).
  void instant(sim::SimTime ts, std::string_view cat, std::string_view name,
               std::string_view track, json::Object args = {});

  /// Records a counter sample (numeric time series).
  void counter(sim::SimTime ts, std::string_view track, std::string_view name,
               double value);

  const std::vector<TraceEvent>& events() const { return events_; }
  const std::vector<std::string>& tracks() const { return tracks_; }
  /// Spans opened but not yet closed — the leak the chaos suites check.
  std::size_t open_spans() const { return open_.size(); }

  /// Moves out every recorded event, leaving interned tracks, open-span
  /// bookkeeping and the span-id counter in place — the incremental drain
  /// DomainSet::merge_epoch runs at each epoch barrier.
  std::vector<TraceEvent> take_events();

  /// Appends an event whose `tid` and `id` are already final. Only the
  /// domain-merge path (domains.cpp) uses this; regular recording goes
  /// through the typed methods above.
  void absorb(TraceEvent ev) { events_.push_back(std::move(ev)); }

  void clear();

 private:
  struct OpenSpan {
    std::string cat;
    std::string name;
    std::uint32_t tid = 0;
    // Interned prof tag mirrored on begin() (0 = none) — end() pops the
    // matching frame from the bound prof slot (telemetry/prof/profiler.hpp).
    std::uint32_t prof_tag = 0;
  };

  std::vector<TraceEvent> events_;
  std::vector<std::string> tracks_;
  std::map<std::string, std::uint32_t, std::less<>> track_ids_;
  std::map<std::uint64_t, OpenSpan> open_;
  std::uint64_t next_span_ = 1;
};

/// A label set attached to a metric name, canonicalized into the key as
/// `name{k1=v1,k2=v2}` (keys sorted, Prometheus-style).
using Labels =
    std::initializer_list<std::pair<std::string_view, std::string_view>>;

/// Builds the canonical labeled metric key.
std::string labeled(std::string_view name, Labels labels);

/// Process-wide named metrics: monotonic counters, last-value gauges and
/// sample histograms (built on util::CounterSet / util::Histogram). Like
/// Tracer, the registry assumes the caller checked telemetry::on().
class MetricsRegistry {
 public:
  /// Histograms are capped at this many stored samples (deterministic
  /// half-thinning; see util::Histogram::set_sample_cap) so soak-length
  /// runs cannot grow telemetry memory without bound.
  static constexpr std::size_t kHistogramSampleCap = 8192;

  void inc(std::string_view name, std::int64_t by = 1) {
    counters_.inc(std::string(name), by);
  }
  void inc(std::string_view name, Labels labels, std::int64_t by = 1) {
    counters_.inc(labeled(name, labels), by);
  }

  void set_gauge(std::string_view name, double value) {
    if (!std::isfinite(value)) return;  // JSON has no NaN/Inf
    gauges_[std::string(name)] = value;
  }
  void set_gauge(std::string_view name, Labels labels, double value) {
    if (!std::isfinite(value)) return;
    gauges_[labeled(name, labels)] = value;
  }

  void observe(std::string_view name, double value);
  void observe(std::string_view name, Labels labels, double value) {
    observe(std::string_view(labeled(name, labels)), value);
  }

  std::int64_t counter_value(const std::string& name) const {
    return counters_.get(name);
  }
  double gauge_value(const std::string& name) const {
    auto it = gauges_.find(name);
    return it == gauges_.end() ? 0.0 : it->second;
  }
  const util::Histogram* histogram(const std::string& name) const {
    auto it = hists_.find(name);
    return it == hists_.end() ? nullptr : &it->second;
  }

  const util::CounterSet& counters() const { return counters_; }
  const std::map<std::string, double>& gauges() const { return gauges_; }
  const std::map<std::string, util::Histogram>& histograms() const {
    return hists_;
  }

  /// Folds another registry into this one (multi-vehicle aggregation).
  void merge(const MetricsRegistry& other);

  void reset();

 private:
  util::CounterSet counters_;
  std::map<std::string, double> gauges_;
  std::map<std::string, util::Histogram> hists_;
};

/// One capture target: a tracer + metrics registry pair. Threads bind a
/// domain thread-locally (bind_domain below); instrumentation records into
/// whatever domain the calling thread has bound. Domains have no internal
/// locking — the binding discipline (one thread writes a domain at a time)
/// is what makes sharded capture race-free.
class Domain {
 public:
  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Drops all recorded events and metrics (start of a fresh capture).
  void reset() {
    tracer_.clear();
    metrics_.reset();
  }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
};

class FlightRing;  // flight.hpp

namespace internal {
/// The calling thread's recording target; nullptr = telemetry off on this
/// thread. thread_local is the load-bearing property: a worker binds its
/// shard's domain around each epoch, so instrumented code deep in the
/// layers records into per-shard storage with no shared mutable state.
inline thread_local Domain* tls_domain = nullptr;
/// The calling thread's flight-recorder ring (DESIGN.md §6i); nullptr =
/// no flight recording. Bound independently of tls_domain so the black
/// box stays on when full capture is off.
inline thread_local FlightRing* tls_flight = nullptr;
}  // namespace internal

/// Binds `domain` as the calling thread's recording target and returns the
/// previous binding (so scopes can save/restore). Pass nullptr to turn
/// telemetry off for this thread.
inline Domain* bind_domain(Domain* domain) {
  Domain* prev = internal::tls_domain;
  internal::tls_domain = domain;
  return prev;
}

/// The calling thread's current recording target (nullptr when off).
inline Domain* bound_domain() { return internal::tls_domain; }

/// Binds `ring` as the calling thread's flight-recorder target and
/// returns the previous binding. Pass nullptr to stop flight recording
/// on this thread.
inline FlightRing* bind_flight(FlightRing* ring) {
  FlightRing* prev = internal::tls_flight;
  internal::tls_flight = ring;
  return prev;
}

/// The calling thread's current flight ring (nullptr when off).
inline FlightRing* bound_flight() { return internal::tls_flight; }

// Flight-plane mirrors (out of line in flight.cpp; no-ops when the
// calling thread has no bound ring). The labeled metric helpers mirror
// the UNLABELED base name — the black box wants the aggregate signal,
// not a per-label allocation on the hot path.
void flight_metric(std::string_view name, std::int64_t by);
void flight_observe(std::string_view name, double value);
void flight_gauge(std::string_view name, double value);

/// The process-global legacy domain, used by single-threaded captures
/// (telemetry::Session). enable() binds it on the calling thread; the
/// enabled() flag survives so sim::ShardedSimulator can diagnose the one
/// genuinely unsupported combination (a live Session + worker threads).
class Telemetry {
 public:
  static Telemetry& instance();

  /// True while a legacy Session holds the global capture.
  static bool enabled() { return enabled_; }

  void enable() {
    enabled_ = true;
    bind_domain(&domain_);
  }
  void disable() {
    enabled_ = false;
    if (bound_domain() == &domain_) bind_domain(nullptr);
  }

  Tracer& tracer() { return domain_.tracer(); }
  MetricsRegistry& metrics() { return domain_.metrics(); }
  Domain& domain() { return domain_; }

  /// Drops all recorded events and metrics (start of a fresh capture).
  void reset() { domain_.reset(); }

 private:
  Telemetry() = default;
  static inline bool enabled_ = false;
  Domain domain_;
};

// --- instrumentation-site helpers -----------------------------------------

/// The guard every instrumentation site starts with.
inline bool on() { return internal::tls_domain != nullptr; }

/// Accessors used by instrumentation after an on() check. When no domain is
/// bound they fall back to the global domain — preserving the pre-domain
/// behaviour of unguarded call sites (records land in global storage and are
/// dropped by the next capture's reset) instead of dereferencing null.
inline Tracer& tracer() {
  Domain* d = internal::tls_domain;
  return d != nullptr ? d->tracer() : Telemetry::instance().tracer();
}
inline MetricsRegistry& metrics() {
  Domain* d = internal::tls_domain;
  return d != nullptr ? d->metrics() : Telemetry::instance().metrics();
}

/// Guarded one-liners for sites that only bump a metric. Each also
/// mirrors the delta into the calling thread's flight ring (when one is
/// bound) — the always-on plane works with full capture off.
inline void count(std::string_view name, std::int64_t by = 1) {
  if (on()) metrics().inc(name, by);
  if (internal::tls_flight != nullptr) flight_metric(name, by);
}
inline void count(std::string_view name, Labels labels, std::int64_t by = 1) {
  if (on()) metrics().inc(name, labels, by);
  if (internal::tls_flight != nullptr) flight_metric(name, by);
}
inline void observe(std::string_view name, double value) {
  if (on()) metrics().observe(name, value);
  if (internal::tls_flight != nullptr) flight_observe(name, value);
}
inline void observe(std::string_view name, Labels labels, double value) {
  if (on()) metrics().observe(name, labels, value);
  if (internal::tls_flight != nullptr) flight_observe(name, value);
}
inline void gauge(std::string_view name, double value) {
  if (on()) metrics().set_gauge(name, value);
  if (internal::tls_flight != nullptr) flight_gauge(name, value);
}

/// RAII helper for stack-shaped spans (scoped sections of driver code; the
/// async layers store raw begin() ids in their run state instead).
class ScopedSpan {
 public:
  ScopedSpan(sim::SimTime now, std::string_view cat, std::string_view name,
             std::string_view track, json::Object args = {})
      : end_ts_(now) {
    if (on()) id_ = tracer().begin(now, cat, name, track, std::move(args));
  }
  ~ScopedSpan() { close(end_ts_); }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Sets the timestamp the destructor closes with (call before scope exit
  /// when sim time advanced inside the scope).
  void close_at(sim::SimTime ts) { end_ts_ = ts; }
  void close(sim::SimTime ts, json::Object args = {}) {
    if (id_ != 0 && on()) tracer().end(ts, id_, std::move(args));
    id_ = 0;
  }

 private:
  std::uint64_t id_ = 0;
  sim::SimTime end_ts_;
};

}  // namespace vdap::telemetry
