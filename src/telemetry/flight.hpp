// Flight recorder: always-on, fixed-memory black-box diagnostics
// (DESIGN.md §6i).
//
// A FlightRecorder owns one FlightRing per telemetry domain (one per
// shard plus the coordinator, mirroring telemetry::DomainSet) plus a
// master ring the scratch rings fold into at epoch barriers and a
// wall-clock runtime ring. Appends are O(1) stores into preallocated
// slots — no allocation, no locking, no branches beyond the
// capacity check — cheap enough to leave on even when full capture is
// off.
//
// Determinism contract: FlightRecord is a 104-byte POD with zero
// padding, built from a memset-zeroed struct, so the canonical content
// order (ts first, then memcmp of the whole record) is a total order on
// record *content*. fold_barrier() drains every scratch ring while the
// shards are quiesced and stable-sorts the drained records into the
// master ring — the master content is a pure function of the record
// multiset, independent of which shard recorded what. Sim-clock-
// triggered incident bundles (manifest.json + rings.vfr) are therefore
// byte-identical per (seed, plan) across the shard × thread matrix,
// provided no scratch ring overflowed between barriers
// (scratch_dropped() == 0; the flight test suite asserts it).
// runtime.jsonl inside a bundle is the wall-clock plane (per-shard
// busy/wait snapshots) and is excluded from the byte-identity contract,
// like shards.jsonl in §6h.
//
// Incident triggers: HealthController SLO breach, FaultInjector
// activation, the explicit telemetry::incident() API (all three append
// a kIncident record to the calling thread's ring and bump a pending
// counter serviced at the next quiesced barrier), and fatal signals —
// arm_crash_dump() installs an async-signal-safe handler that only
// write()s pre-serialized manifest halves and streams the raw ring
// pages (section checksum as a trailer so each racy slot is read
// exactly once).
#pragma once

#include <atomic>
#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sim/time.hpp"
#include "util/json.hpp"

namespace vdap::telemetry {

enum class FlightKind : std::uint32_t {
  kMetric = 0,   // counter increment (value = delta)
  kGauge,        // gauge set (fvalue)
  kObserve,      // histogram sample (fvalue)
  kSpanBegin,    // async span open (detail = category)
  kSpanEnd,      // async span close
  kComplete,     // complete slice (value = duration µs)
  kInstant,      // instant event
  kCounter,      // counter-series sample (fvalue)
  kHealth,       // SLO breach/recovery (detail = implicated tier)
  kFault,        // fault window edge (track = target, value = 1 begin / 0 end)
  kIncident,     // incident trigger (name = reason)
  kRuntime,      // shard-runtime snapshot (wall-clock plane)
};
constexpr std::uint32_t kFlightKindCount = 12;

/// Short stable label ("metric", "span-begin", ...) for reports.
std::string_view flight_kind_name(std::uint32_t kind);

/// One flight-recorder slot. Fixed 104 bytes, no padding, trivially
/// copyable — the layout IS the rings.vfr wire format (version VFR1).
struct FlightRecord {
  std::int64_t ts;      // µs on the sim clock (runtime records: epoch end)
  std::int64_t value;   // integer payload (delta, duration, flags)
  double fvalue;        // floating payload (sample, gauge, busy seconds)
  std::uint32_t kind;   // FlightKind
  char name[36];        // NUL-terminated, truncated
  char track[20];
  char detail[20];
};
static_assert(sizeof(FlightRecord) == 104, "rings.vfr wire layout");
static_assert(std::is_trivially_copyable_v<FlightRecord>);

/// Builds a record from a zeroed struct (so padding-free memcmp is a
/// deterministic content comparison). Strings are truncated to fit.
FlightRecord make_flight_record(FlightKind kind, sim::SimTime ts,
                                std::string_view name, std::string_view track,
                                std::string_view detail, std::int64_t value,
                                double fvalue);

/// Canonical content order: ts first, then memcmp of the whole record —
/// the same total-order idea DomainSet::merge_epoch uses for trace
/// events. Identical records are content-twins, so stable_sort output
/// depends only on the record multiset.
bool flight_record_less(const FlightRecord& a, const FlightRecord& b);

class FlightRecorder;

/// A fixed-capacity overwrite-oldest ring of FlightRecords. Capacity 0
/// means disabled: append() is a no-op and no accounting is kept.
/// Single-writer (the binding discipline of telemetry domains); the
/// crash handler tolerates racy reads because parse-back is hardened.
class FlightRing {
 public:
  FlightRing() = default;
  explicit FlightRing(std::size_t capacity) { reset_capacity(capacity); }

  /// (Re)allocates storage. Not for use while bound to a thread.
  void reset_capacity(std::size_t capacity);

  bool enabled() const { return !slots_.empty(); }
  std::size_t capacity() const { return slots_.size(); }

  /// O(1), allocation-free hot-path append.
  void append(const FlightRecord& r) {
    if (slots_.empty()) return;
    slots_[static_cast<std::size_t>(appended_ % slots_.size())] = r;
    ++appended_;
  }

  /// Records appended since construction / last drain.
  std::uint64_t appended() const { return appended_; }
  /// Records currently held (min(appended, capacity)).
  std::size_t size() const;
  /// Records overwritten since the last drain (appended - size).
  std::uint64_t overwritten() const;

  // --- timestamps ---------------------------------------------------------
  /// Points the ring at a live sim clock (Simulator::now_ptr()); metric
  /// mirrors that have no caller timestamp read it.
  void set_clock(const sim::SimTime* clock) { clock_ = clock; }
  /// Fallback timestamp for rings with no clock (the coordinator ring is
  /// hinted with the epoch end at each barrier).
  void set_time_hint(sim::SimTime t) { hint_ = t; }
  sim::SimTime now() const { return clock_ != nullptr ? *clock_ : hint_; }

  // --- recorder wiring ----------------------------------------------------
  void set_owner(FlightRecorder* owner) { owner_ = owner; }
  FlightRecorder* owner() const { return owner_; }
  bool mirror_metrics() const { return mirror_metrics_; }
  bool mirror_spans() const { return mirror_spans_; }
  bool trigger_on_fault() const { return trigger_on_fault_; }
  bool trigger_on_breach() const { return trigger_on_breach_; }

  // --- barrier / export side ----------------------------------------------
  /// Copies held records oldest-first (no reset).
  void snapshot_into(std::vector<FlightRecord>& out) const;
  /// Copies held records oldest-first, then resets the ring,
  /// accumulating overwritten records into dropped_total().
  void drain_into(std::vector<FlightRecord>& out);
  /// Records lost to overwrite across all drains so far.
  std::uint64_t dropped_total() const { return dropped_total_; }
  /// Records handed out by drain_into across the ring's lifetime.
  std::uint64_t drained_total() const { return drained_total_; }

  // --- crash-handler raw access (async-signal-safe reads) -----------------
  const FlightRecord* raw_data() const { return slots_.data(); }
  std::uint64_t raw_appended() const { return appended_; }

 private:
  friend class FlightRecorder;

  std::vector<FlightRecord> slots_;
  std::uint64_t appended_ = 0;
  std::uint64_t dropped_total_ = 0;
  std::uint64_t drained_total_ = 0;
  const sim::SimTime* clock_ = nullptr;
  sim::SimTime hint_ = 0;
  FlightRecorder* owner_ = nullptr;
  bool mirror_metrics_ = true;
  bool mirror_spans_ = true;
  bool trigger_on_fault_ = true;
  bool trigger_on_breach_ = true;
};

/// The recorder: scratch rings (one per domain), the canonical master
/// ring they fold into, the wall-clock runtime ring, trigger servicing,
/// bundle snapshots, and the crash-dump path.
class FlightRecorder {
 public:
  struct Options {
    std::size_t scratch_capacity = 4096;   // per-domain ring slots
    std::size_t master_capacity = 16384;   // canonical folded history
    std::size_t runtime_capacity = 1024;   // wall-clock plane
    /// Mirror metric deltas into the rings. run_fleet turns this off:
    /// its capture plane is only thread-invariant at fixed shards, and
    /// the flight bundle must stay invariant across the full matrix.
    bool mirror_metrics = true;
    /// Mirror trace spans (only fires while capture is on — span sites
    /// are guarded by telemetry::on()).
    bool mirror_spans = true;
    bool trigger_on_fault = true;
    bool trigger_on_breach = true;
    /// Bundles per run; further triggers only count.
    int max_bundles = 4;
    /// Bundle output directory; empty keeps bundles in memory only.
    std::string dir;
  };

  /// One incident snapshot. manifest + rings are the deterministic
  /// plane; runtime is wall-clock diagnostics.
  struct Bundle {
    std::string id;        // "incident-NNN-t<trigger µs>"
    std::string manifest;  // manifest.json bytes
    std::string rings;     // rings.vfr bytes (VFR1, master section)
    std::string runtime;   // runtime.jsonl bytes (wall plane)
    std::string dir;       // written path, "" when in-memory only
  };

  /// `domains` scratch rings (shards + coordinator when driven by
  /// sim::ShardedSimulator; index nshards is the coordinator).
  explicit FlightRecorder(int domains);  // default Options
  FlightRecorder(int domains, Options opts);
  ~FlightRecorder();

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  int domains() const { return static_cast<int>(rings_.size()); }
  FlightRing& ring(int domain) {
    return rings_[static_cast<std::size_t>(domain)];
  }
  FlightRing& master_ring() { return master_; }
  const FlightRing& master_ring() const { return master_; }
  FlightRing& runtime_ring() { return runtime_; }
  const Options& options() const { return opts_; }

  // --- manifest context ----------------------------------------------------
  void set_context(std::uint64_t seed, std::string plan, json::Value config);
  /// Called while building each manifest (shards quiesced); adds
  /// deterministic run state: SLO evaluator summaries, anomaly flags.
  void set_manifest_hook(std::function<void(json::Object&)> hook);

  // --- triggers ------------------------------------------------------------
  /// Any thread; serviced at the next fold_barrier. The caller also
  /// appends a kIncident record to its bound ring so the barrier can
  /// name the primary trigger.
  void request_snapshot() {
    pending_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Coordinator only, shards quiesced: drains every scratch ring into
  /// the master ring in canonical content order, then snapshots a
  /// bundle if any trigger fired since the previous barrier.
  void fold_barrier(sim::SimTime now);

  /// Explicit immediate incident from a quiesced/single-threaded
  /// context: records the trigger, folds, and snapshots now.
  const Bundle* incident_now(sim::SimTime now, std::string_view reason,
                             std::string_view detail = {});

  // --- results -------------------------------------------------------------
  const std::vector<Bundle>& bundles() const { return bundles_; }
  /// Triggers observed (including those beyond max_bundles).
  std::uint64_t triggers_seen() const { return triggers_seen_; }
  /// Records folded into the master ring across the run.
  std::uint64_t folded_records() const { return folded_records_; }
  /// Sum of scratch-ring drops; byte-identity across the shard × thread
  /// matrix is guaranteed only when this is 0.
  std::uint64_t scratch_dropped() const;

  /// VFR1 serialization of the master ring (packed, canonical order).
  std::string serialize_rings() const;
  /// Wall-clock plane: one JSON line per runtime record.
  std::string runtime_jsonl() const;
  /// Deterministic manifest (trigger may be nullptr).
  std::string manifest_json(const FlightRecord* trigger) const;

  // --- crash dump ----------------------------------------------------------
  /// Installs SIGSEGV/SIGABRT/SIGBUS/SIGFPE/SIGILL handlers that
  /// write() a best-effort bundle (options().dir + "/incident-crash")
  /// from the raw rings, then re-raise. Requires a non-empty dir; one
  /// recorder may be armed at a time (later arms win).
  void arm_crash_dump();
  static void disarm_crash_dump();

 private:
  const Bundle* make_bundle(const FlightRecord& trigger);

  Options opts_;
  std::vector<FlightRing> rings_;
  FlightRing master_;
  FlightRing runtime_;
  std::atomic<int> pending_{0};
  std::uint64_t triggers_seen_ = 0;
  std::uint64_t folded_records_ = 0;
  std::vector<FlightRecord> fold_scratch_;
  std::vector<Bundle> bundles_;
  std::uint64_t seed_ = 0;
  std::string plan_;
  json::Value config_;
  std::function<void(json::Object&)> manifest_hook_;
};

// --- recording helpers (flight plane; independent of capture state) --------

/// Mirrors a counter increment into the calling thread's bound ring.
void flight_metric(std::string_view name, std::int64_t by);
/// Mirrors a histogram sample.
void flight_observe(std::string_view name, double value);
/// Mirrors a gauge set.
void flight_gauge(std::string_view name, double value);
/// Mirrors a trace event (called by Tracer's typed methods).
void flight_span(FlightKind kind, sim::SimTime ts, std::string_view cat,
                 std::string_view name, std::string_view track,
                 std::int64_t value, double fvalue);
/// Records an SLO health edge and, on a breach, raises an incident
/// trigger (when the ring opted in). NOT gated by telemetry::on().
void flight_health(sim::SimTime ts, std::string_view service,
                   std::string_view tier, bool breach, double observed);
/// Records a fault-window edge and, on a begin, raises an incident
/// trigger (when the ring opted in).
void flight_fault(sim::SimTime ts, std::string_view name,
                  std::string_view target, std::string_view kind, bool begin);
/// Explicit incident API: records a kIncident on the calling thread's
/// ring and requests a snapshot at the next barrier. No-op when no
/// flight ring is bound.
void incident(std::string_view reason, std::string_view detail = {});

// --- parse-back ------------------------------------------------------------

/// One section of a rings.vfr file, rotated to oldest-first order.
struct FlightSection {
  int domain = 0;  // 0..K-1 scratch, -1 master, -2 runtime
  std::uint64_t appended = 0;
  std::uint64_t head = 0;
  std::uint64_t corrupt_skipped = 0;  // torn/invalid-kind slots dropped
  std::vector<FlightRecord> records;
};

struct FlightParse {
  bool ok = false;
  std::string error;  // clean diagnostic when !ok
  std::uint32_t version = 0;
  std::vector<FlightSection> sections;
};

/// Hardened VFR1 parser: every truncation, hostile count, or bit flip
/// yields ok=false with a diagnostic — counts are validated against the
/// remaining byte budget *before* any allocation, so hostile headers
/// cannot OOM. Torn records inside a checksum-valid crash section are
/// skipped and counted, not fatal.
FlightParse parse_flight_rings(std::string_view bytes);

/// Renders the blame-annotated incident report (manifest summary, kind
/// counts, blame table from kHealth tier attribution + kFault targets,
/// full timeline).
std::string incident_report(const json::Value& manifest,
                            const FlightParse& rings);

/// Loads `dir`/manifest.json + rings.vfr and renders the report.
/// Returns "" and sets *error on any malformed input.
std::string render_incident_dir(const std::string& dir, std::string* error);

}  // namespace vdap::telemetry
