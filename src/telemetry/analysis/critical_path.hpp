// Critical-path extraction (DESIGN.md §6d): walks a captured trace and
// decomposes each end-to-end service latency into exclusive queue /
// compute / network / failover / slack segments, attributed per offload
// tier.
//
// The extractor consumes the "segment" slices ElasticManager emits on the
// "elastic/segments" track (one 'X' per hung wait, tier transfer, task
// execution and abandoned failover attempt, each carrying the public run
// id in args) together with the per-run "service" async spans on the
// "elastic" track. Unlike the streaming sums in ServiceRunReport — which
// attribute overlapping work to every segment that claims it — the
// extractor runs an interval sweep over each run's slices, so the five
// exclusive buckets partition the run's latency exactly:
//
//   latency = queue + network + compute + failover + slack
//
// When intervals overlap, the covered instant goes to one bucket by fixed
// precedence (failover > network > compute > queue): an abandoned
// attempt's transfers count as failover waste, a transfer overlapping a
// computation is charged to the network (it is the off-board cost the
// offload decision bought). Uncovered time inside the run span — scheduler
// hops, result assembly — is slack.
//
// Everything here is a pure function of the event list, so reports are
// byte-identical for byte-identical traces (the determinism contract the
// `trace` suite enforces extends to analysis output).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace vdap::telemetry::analysis {

/// Exclusive decomposition of one run's latency; the five fields sum to
/// `finished - released` exactly.
struct ExclusiveSegments {
  sim::SimDuration queue = 0;
  sim::SimDuration network = 0;
  sim::SimDuration compute = 0;
  sim::SimDuration failover = 0;
  sim::SimDuration slack = 0;  // inside the run span, covered by no slice

  sim::SimDuration total() const {
    return queue + network + compute + failover + slack;
  }
  /// Largest non-slack bucket ("queue"/"net"/"compute"/"failover");
  /// "compute" when all four are zero.
  std::string_view dominant() const;
};

/// One service run reconstructed from its trace span + segment slices.
struct RunCriticalPath {
  std::uint64_t run_id = 0;  // public id (args["run"] on every slice)
  std::string service;
  std::string pipeline;  // final pipeline, from the span end args
  sim::SimTime released = 0;
  sim::SimTime finished = 0;
  bool ok = false;
  bool deadline_met = false;
  int failovers = 0;
  ExclusiveSegments segments;
  /// Exclusive time per tier, from the sweep: each covered instant is
  /// charged to the tier of its winning slice ("on-board" for queue and
  /// untagged slices). Values sum to total() minus slack.
  std::map<std::string, sim::SimDuration> tier_time;

  sim::SimDuration latency() const { return finished - released; }
};

/// Per-service aggregate across runs.
struct ServiceCriticalPath {
  std::string service;
  std::size_t runs = 0;
  std::size_t ok = 0;
  std::size_t deadline_met = 0;
  ExclusiveSegments segments;  // summed over runs
  std::map<std::string, sim::SimDuration> tier_time;
  sim::SimDuration latency_sum = 0;
  sim::SimDuration latency_max = 0;
};

struct CriticalPathReport {
  /// Completed runs, ordered by (finished, run_id) — trace order.
  std::vector<RunCriticalPath> runs;
  /// Aggregates keyed by service name (ordered ⇒ deterministic tables).
  std::map<std::string, ServiceCriticalPath> services;
};

/// Extracts the critical-path report from a raw event list. `tracks` maps
/// TraceEvent::tid to track names (Tracer::tracks() or the parsed
/// thread_name metadata). Runs whose span never ends are skipped.
CriticalPathReport extract_critical_paths(
    const std::vector<TraceEvent>& events,
    const std::vector<std::string>& tracks);

inline CriticalPathReport extract_critical_paths(const Tracer& tracer) {
  return extract_critical_paths(tracer.events(), tracer.tracks());
}

/// Renders the per-service table (`vdap-report` output): one row per
/// service with run counts and the mean exclusive split in ms.
std::string critical_path_table(const CriticalPathReport& report);

/// Parses a chrome_trace_json() document back into events + track names —
/// the inverse the round-trip tests and `vdap-report` rely on. Returns
/// false (and sets *error) on malformed input; 'M' metadata records become
/// track names, not events.
bool parse_chrome_trace(std::string_view text, std::vector<TraceEvent>* events,
                        std::vector<std::string>* tracks, std::string* error);

}  // namespace vdap::telemetry::analysis
