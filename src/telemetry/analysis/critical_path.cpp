#include "telemetry/analysis/critical_path.hpp"

#include <algorithm>
#include <cstdlib>

namespace vdap::telemetry::analysis {

namespace {

// Sweep precedence: higher wins when slices overlap.
enum Category : int { kQueue = 0, kCompute = 1, kNetwork = 2, kFailover = 3 };

int category_of(std::string_view name) {
  if (name == "queue") return kQueue;
  if (name == "compute") return kCompute;
  if (name == "net") return kNetwork;
  if (name == "failover") return kFailover;
  return -1;
}

struct Slice {
  sim::SimTime start = 0;
  sim::SimTime end = 0;
  int category = kQueue;
  std::string tier;  // empty ⇒ on-board
};

struct OpenRun {
  std::uint64_t run_id = 0;
  std::string service;
  sim::SimTime released = 0;
};

std::uint32_t track_index(const std::vector<std::string>& tracks,
                          std::string_view name) {
  for (std::uint32_t i = 0; i < tracks.size(); ++i) {
    if (tracks[i] == name) return i;
  }
  return static_cast<std::uint32_t>(tracks.size());  // matches nothing
}

void add_segments(ExclusiveSegments& s, int category, sim::SimDuration d) {
  switch (category) {
    case kQueue: s.queue += d; break;
    case kCompute: s.compute += d; break;
    case kNetwork: s.network += d; break;
    case kFailover: s.failover += d; break;
    default: s.slack += d; break;
  }
}

/// Exclusive sweep over one run's slices, clipped to [released, finished).
void sweep(RunCriticalPath& run, std::vector<Slice>& slices) {
  for (Slice& s : slices) {
    s.start = std::max(s.start, run.released);
    s.end = std::min(s.end, run.finished);
  }
  std::vector<sim::SimTime> cuts;
  cuts.reserve(slices.size() * 2 + 2);
  cuts.push_back(run.released);
  cuts.push_back(run.finished);
  for (const Slice& s : slices) {
    if (s.start < s.end) {
      cuts.push_back(s.start);
      cuts.push_back(s.end);
    }
  }
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  // Stable slice order for deterministic tie-breaks within one category.
  std::stable_sort(slices.begin(), slices.end(),
                   [](const Slice& a, const Slice& b) {
                     if (a.start != b.start) return a.start < b.start;
                     return a.tier < b.tier;
                   });
  for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
    sim::SimTime a = cuts[i];
    sim::SimTime b = cuts[i + 1];
    const Slice* winner = nullptr;
    for (const Slice& s : slices) {
      if (s.start <= a && s.end >= b &&
          (winner == nullptr || s.category > winner->category)) {
        winner = &s;
      }
    }
    sim::SimDuration d = b - a;
    if (winner == nullptr) {
      run.segments.slack += d;
      continue;
    }
    add_segments(run.segments, winner->category, d);
    run.tier_time[winner->tier.empty() ? "on-board" : winner->tier] += d;
  }
}

}  // namespace

std::string_view ExclusiveSegments::dominant() const {
  std::string_view name = "compute";
  sim::SimDuration best = compute;
  if (failover > best) { best = failover; name = "failover"; }
  if (network > best) { best = network; name = "net"; }
  if (queue > best) { best = queue; name = "queue"; }
  return name;
}

CriticalPathReport extract_critical_paths(
    const std::vector<TraceEvent>& events,
    const std::vector<std::string>& tracks) {
  const std::uint32_t elastic_tid = track_index(tracks, "elastic");
  const std::uint32_t segments_tid = track_index(tracks, "elastic/segments");

  std::map<std::uint64_t, OpenRun> open;            // span id → open run
  std::map<std::uint64_t, std::vector<Slice>> seg;  // public run id → slices
  CriticalPathReport report;

  for (const TraceEvent& ev : events) {
    if (ev.tid == segments_tid && ev.ph == 'X' && ev.cat == "segment") {
      int category = category_of(ev.name);
      const json::Value* run_arg = ev.args.count("run") != 0
                                       ? &ev.args.at("run")
                                       : nullptr;
      if (category < 0 || run_arg == nullptr || !run_arg->is_int()) continue;
      Slice s;
      s.start = ev.ts;
      s.end = ev.ts + ev.dur;
      s.category = category;
      auto tier = ev.args.find("tier");
      if (tier != ev.args.end() && tier->second.is_string()) {
        s.tier = tier->second.as_string();
      }
      seg[static_cast<std::uint64_t>(run_arg->as_int())].push_back(s);
      continue;
    }
    if (ev.tid != elastic_tid || ev.cat != "service") continue;
    if (ev.ph == 'b') {
      auto run_arg = ev.args.find("run");
      if (run_arg == ev.args.end() || !run_arg->second.is_int()) continue;
      OpenRun r;
      r.run_id = static_cast<std::uint64_t>(run_arg->second.as_int());
      r.service = ev.name;
      r.released = ev.ts;
      open[ev.id] = std::move(r);
    } else if (ev.ph == 'e') {
      auto it = open.find(ev.id);
      if (it == open.end()) continue;
      RunCriticalPath run;
      run.run_id = it->second.run_id;
      run.service = std::move(it->second.service);
      run.released = it->second.released;
      run.finished = ev.ts;
      open.erase(it);
      const json::Value wrapper{ev.args};
      run.ok = wrapper.get_bool("ok");
      run.deadline_met = wrapper.get_bool("deadline_met");
      run.pipeline = wrapper.get_string("pipeline");
      run.failovers = static_cast<int>(wrapper.get_int("failovers"));
      report.runs.push_back(std::move(run));
    }
  }

  std::stable_sort(report.runs.begin(), report.runs.end(),
                   [](const RunCriticalPath& a, const RunCriticalPath& b) {
                     if (a.finished != b.finished) return a.finished < b.finished;
                     return a.run_id < b.run_id;
                   });

  for (RunCriticalPath& run : report.runs) {
    auto it = seg.find(run.run_id);
    static const std::vector<Slice> kNone;
    std::vector<Slice> slices = it != seg.end() ? it->second : kNone;
    sweep(run, slices);

    ServiceCriticalPath& svc = report.services[run.service];
    svc.service = run.service;
    ++svc.runs;
    if (run.ok) ++svc.ok;
    if (run.deadline_met) ++svc.deadline_met;
    svc.segments.queue += run.segments.queue;
    svc.segments.network += run.segments.network;
    svc.segments.compute += run.segments.compute;
    svc.segments.failover += run.segments.failover;
    svc.segments.slack += run.segments.slack;
    for (const auto& [tier, d] : run.tier_time) svc.tier_time[tier] += d;
    svc.latency_sum += run.latency();
    svc.latency_max = std::max(svc.latency_max, run.latency());
  }
  return report;
}

std::string critical_path_table(const CriticalPathReport& report) {
  util::TextTable t("critical path (mean exclusive split per run, ms)");
  t.set_header({"service", "runs", "ok", "ddl", "mean", "max", "queue", "net",
                "compute", "failover", "slack", "dominant", "top tier"});
  for (const auto& [name, svc] : report.services) {
    double n = static_cast<double>(svc.runs);
    std::string top_tier = "-";
    sim::SimDuration top = -1;
    for (const auto& [tier, d] : svc.tier_time) {
      if (d > top) { top = d; top_tier = tier; }
    }
    t.add_row({name, std::to_string(svc.runs), std::to_string(svc.ok),
               std::to_string(svc.deadline_met),
               util::TextTable::num(sim::to_millis(svc.latency_sum) / n, 3),
               util::TextTable::num(sim::to_millis(svc.latency_max), 3),
               util::TextTable::num(sim::to_millis(svc.segments.queue) / n, 3),
               util::TextTable::num(sim::to_millis(svc.segments.network) / n, 3),
               util::TextTable::num(sim::to_millis(svc.segments.compute) / n, 3),
               util::TextTable::num(sim::to_millis(svc.segments.failover) / n, 3),
               util::TextTable::num(sim::to_millis(svc.segments.slack) / n, 3),
               std::string(svc.segments.dominant()), top_tier});
  }
  return t.to_string();
}

bool parse_chrome_trace(std::string_view text, std::vector<TraceEvent>* events,
                        std::vector<std::string>* tracks, std::string* error) {
  events->clear();
  tracks->clear();
  std::optional<json::Value> doc = json::try_parse(text);
  if (!doc.has_value()) {
    if (error != nullptr) *error = "malformed JSON";
    return false;
  }
  const json::Value* list = doc->find("traceEvents");
  if (list == nullptr || !list->is_array()) {
    if (error != nullptr) *error = "missing traceEvents array";
    return false;
  }
  for (const json::Value& ev : list->as_array()) {
    if (!ev.is_object()) {
      if (error != nullptr) *error = "non-object trace event";
      return false;
    }
    std::string ph = ev.get_string("ph");
    if (ph.size() != 1) {
      if (error != nullptr) *error = "bad ph field";
      return false;
    }
    // Hostile/corrupt input must fail cleanly, not allocate: a track id
    // far beyond anything the Tracer interns rejects the document instead
    // of driving tracks->resize() to out-of-memory.
    constexpr std::int64_t kMaxTid = 1 << 20;
    const std::int64_t raw_tid = ev.get_int("tid");
    if (raw_tid < 0 || raw_tid > kMaxTid) {
      if (error != nullptr) *error = "tid out of range";
      return false;
    }
    if (ph[0] == 'M') {
      // thread_name metadata records rebuild the track table.
      if (ev.get_string("name") != "thread_name") continue;
      auto tid = static_cast<std::size_t>(raw_tid);
      const json::Value* args = ev.find("args");
      if (args == nullptr) continue;
      if (tracks->size() <= tid) tracks->resize(tid + 1);
      (*tracks)[tid] = args->get_string("name");
      continue;
    }
    TraceEvent out;
    out.ph = ph[0];
    out.ts = ev.get_int("ts");
    out.dur = ev.get_int("dur");
    out.tid = static_cast<std::uint32_t>(raw_tid);
    out.cat = ev.get_string("cat");
    out.name = ev.get_string("name");
    std::string id = ev.get_string("id");
    if (!id.empty()) {
      out.id = std::strtoull(id.c_str(), nullptr, 16);
    }
    const json::Value* args = ev.find("args");
    if (args != nullptr) {
      if (!args->is_object()) {
        if (error != nullptr) *error = "non-object args";
        return false;
      }
      out.args = args->as_object();
    }
    events->push_back(std::move(out));
  }
  return true;
}

}  // namespace vdap::telemetry::analysis
