#include "telemetry/analysis/slo.hpp"

#include <algorithm>

namespace vdap::telemetry::analysis {

namespace {

constexpr double kMs = 1000.0;  // µs per ms

/// Largest-count key; ties go to the lexicographically smallest (map
/// order), keeping attribution deterministic.
std::string top_key(const std::map<std::string, std::size_t>& counts) {
  std::string best;
  std::size_t n = 0;
  for (const auto& [key, count] : counts) {
    if (count > n) {
      n = count;
      best = key;
    }
  }
  return best;
}

}  // namespace

std::string_view to_string(HealthEventKind kind) {
  switch (kind) {
    case HealthEventKind::kLatencyBreach: return "latency-breach";
    case HealthEventKind::kLatencyRecover: return "latency-recover";
    case HealthEventKind::kAvailabilityBreach: return "availability-breach";
    case HealthEventKind::kAvailabilityRecover: return "availability-recover";
  }
  return "?";
}

std::string_view to_string(Severity severity) {
  return severity == Severity::kCritical ? "critical" : "warning";
}

std::vector<SloTarget> standard_slos() {
  // Table I QoS requirements, deadline → p95 latency target.
  auto ms = [](double v) { return static_cast<sim::SimDuration>(v * kMs); };
  return {
      {"lane-detection", ms(50), 0.95, 0.99},
      {"pedestrian-alert", ms(100), 0.95, 0.99},
      {"speech-assistant", ms(800), 0.95, 0.95},
      {"license-plate", ms(1000), 0.95, 0.95},
      {"a3-kidnapper-search", ms(2000), 0.95, 0.90},
      {"infotainment-chunk", ms(2000), 0.95, 0.95},
      {"obd-diagnostics", ms(5000), 0.95, 0.95},
  };
}

SloEvaluator::SloEvaluator() : SloEvaluator(Options{}) {}

SloEvaluator::SloEvaluator(Options options) : options_(options) {}

void SloEvaluator::add_target(SloTarget target) {
  targets_.push_back(target);
  ServiceState& state = states_[target.service];
  state.target = std::move(target);
  state.window.latency_ms.set_sample_cap(4096);
}

void SloEvaluator::observe(const RunObservation& obs) {
  close_windows_before(obs.finished);
  auto it = states_.find(obs.service);
  if (it == states_.end()) return;  // no target, not judged
  ServiceState& state = it->second;
  double lat_ms = sim::to_millis(obs.latency);
  state.window.latency_ms.add(lat_ms);
  ++state.window.total;
  ++state.runs;
  if (obs.ok) {
    ++state.window.ok;
    ++state.runs_ok;
  }
  const SloTarget& target = state.target;
  bool slow = target.latency_target > 0 &&
              obs.latency > target.latency_target;
  if (slow || !obs.ok) {
    if (!obs.dominant_segment.empty()) {
      ++state.window.segments[obs.dominant_segment];
    }
    if (!obs.implicated_tier.empty()) {
      ++state.window.tiers[obs.implicated_tier];
    }
  }
}

void SloEvaluator::close_windows_before(sim::SimTime t) {
  if (!saw_any_) {
    saw_any_ = true;
    window_start_ = (t / options_.window) * options_.window;
    return;
  }
  while (t >= window_start_ + options_.window) {
    sim::SimTime boundary = window_start_ + options_.window;
    for (auto& [service, state] : states_) {
      if (state.window.total >= options_.min_samples) {
        judge(service, state, boundary);
      }
      // Below min_samples the window carries forward unjudged.
    }
    window_start_ = boundary;
  }
}

void SloEvaluator::judge(const std::string& service, ServiceState& state,
                         sim::SimTime boundary) {
  const SloTarget& target = state.target;
  Window& w = state.window;
  ++state.windows_judged;

  if (target.latency_target > 0) {
    double observed = w.latency_ms.quantile(target.quantile);
    double limit = sim::to_millis(target.latency_target);
    state.worst_latency_ms = std::max(state.worst_latency_ms, observed);
    bool breach = observed > limit;
    if (breach) ++state.latency_windows_breached;
    if (breach != state.latency_breached) {
      state.latency_breached = breach;
      HealthEvent ev;
      ev.kind = breach ? HealthEventKind::kLatencyBreach
                       : HealthEventKind::kLatencyRecover;
      ev.severity = breach && observed >= limit * options_.critical_factor
                        ? Severity::kCritical
                        : Severity::kWarning;
      ev.at = boundary;
      ev.service = service;
      ev.observed = observed;
      ev.target = limit;
      if (breach) {
        ev.attributed_segment = top_key(w.segments);
        ev.implicated_tier = top_key(w.tiers);
      }
      emit(std::move(ev));
    }
  }

  if (target.min_availability >= 0.0 && w.total > 0) {
    double observed =
        static_cast<double>(w.ok) / static_cast<double>(w.total);
    bool breach = observed < target.min_availability;
    if (breach) ++state.availability_windows_breached;
    if (breach != state.availability_breached) {
      state.availability_breached = breach;
      HealthEvent ev;
      ev.kind = breach ? HealthEventKind::kAvailabilityBreach
                       : HealthEventKind::kAvailabilityRecover;
      ev.severity =
          breach && observed <= target.min_availability / options_.critical_factor
              ? Severity::kCritical
              : Severity::kWarning;
      ev.at = boundary;
      ev.service = service;
      ev.observed = observed;
      ev.target = target.min_availability;
      if (breach) {
        ev.attributed_segment = top_key(w.segments);
        ev.implicated_tier = top_key(w.tiers);
      }
      emit(std::move(ev));
    }
  }

  w.latency_ms.clear();
  w.latency_ms.set_sample_cap(4096);
  w.total = 0;
  w.ok = 0;
  w.segments.clear();
  w.tiers.clear();
}

void SloEvaluator::flush(sim::SimTime now) {
  close_windows_before(now);
  sim::SimTime boundary = saw_any_ ? window_start_ + options_.window : now;
  for (auto& [service, state] : states_) {
    if (state.window.total >= options_.min_samples) {
      judge(service, state, boundary);
    }
  }
}

void SloEvaluator::emit(HealthEvent ev) {
  events_.push_back(ev);
  if (listener_) listener_(events_.back());
}

bool SloEvaluator::breached(const std::string& service) const {
  auto it = states_.find(service);
  if (it == states_.end()) return false;
  return it->second.latency_breached || it->second.availability_breached;
}

std::string SloEvaluator::compliance_table() const {
  util::TextTable t("SLO compliance (tumbling windows)");
  t.set_header({"service", "target ms", "q", "min avail", "runs", "ok",
                "windows", "lat brch", "avail brch", "worst ms", "status"});
  for (const SloTarget& target : targets_) {
    auto it = states_.find(target.service);
    if (it == states_.end()) continue;
    const ServiceState& s = it->second;
    std::string status =
        s.latency_breached || s.availability_breached ? "BREACHED" : "ok";
    if (s.windows_judged == 0) status = "no data";
    t.add_row({target.service,
               util::TextTable::num(sim::to_millis(target.latency_target), 1),
               util::TextTable::num(target.quantile, 2),
               util::TextTable::num(target.min_availability, 2),
               std::to_string(s.runs), std::to_string(s.runs_ok),
               std::to_string(s.windows_judged),
               std::to_string(s.latency_windows_breached),
               std::to_string(s.availability_windows_breached),
               util::TextTable::num(s.worst_latency_ms, 3), status});
  }
  return t.to_string();
}

}  // namespace vdap::telemetry::analysis
