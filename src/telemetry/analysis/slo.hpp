// Streaming SLO evaluation (DESIGN.md §6d): per-service latency and
// availability targets — seeded from the paper's Table I QoS deadlines —
// evaluated online over tumbling windows of run observations, emitting
// typed HealthEvents on breach/recover transitions.
//
// The evaluator is a pure stream consumer: it never reads the clock or
// draws randomness; every observation is timestamped by the caller (with
// the run's finish time), so window boundaries — and therefore the exact
// event sequence — are a deterministic function of the observation
// stream. It lives in the telemetry layer and knows nothing about
// ElasticManager; core/health.hpp adapts ServiceRunReport into
// RunObservation and wires breach events back into the control knobs.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/time.hpp"
#include "util/stats.hpp"

namespace vdap::telemetry::analysis {

/// One service's target. Latency is judged at `quantile` over a window;
/// availability is the window's ok-fraction.
struct SloTarget {
  std::string service;
  sim::SimDuration latency_target = 0;  // 0 ⇒ latency not judged
  double quantile = 0.95;
  double min_availability = 0.99;  // <0 ⇒ availability not judged
};

/// Targets for the standard service catalog, seeded from Table I: the QoS
/// deadline becomes the p95 latency target.
std::vector<SloTarget> standard_slos();

/// One finished service run, as the evaluator sees it.
struct RunObservation {
  std::string service;
  sim::SimTime finished = 0;
  sim::SimDuration latency = 0;
  bool ok = false;
  std::string dominant_segment;  // SegmentBreakdown::dominant()
  std::string implicated_tier;   // ServiceRunReport::implicated_tier
};

enum class HealthEventKind {
  kLatencyBreach,
  kLatencyRecover,
  kAvailabilityBreach,
  kAvailabilityRecover,
};
enum class Severity { kWarning, kCritical };

std::string_view to_string(HealthEventKind kind);
std::string_view to_string(Severity severity);

struct HealthEvent {
  HealthEventKind kind = HealthEventKind::kLatencyBreach;
  Severity severity = Severity::kWarning;
  sim::SimTime at = 0;  // the window boundary that triggered it
  std::string service;
  double observed = 0.0;  // latency ms at the quantile, or ok-fraction
  double target = 0.0;
  /// Dominant segment across the window's breaching runs ("queue"/"net"/
  /// "compute"/"failover"); empty on recover events.
  std::string attributed_segment;
  /// Most implicated tier across the window's breaching runs.
  std::string implicated_tier;
};

class SloEvaluator {
 public:
  struct Options {
    /// Tumbling window length on the sim clock.
    sim::SimDuration window = 2'000'000;  // 2 s
    /// Windows with fewer observations are carried forward, not judged.
    std::size_t min_samples = 3;
    /// observed ≥ target × factor escalates kWarning → kCritical.
    double critical_factor = 2.0;
  };

  SloEvaluator();
  explicit SloEvaluator(Options options);

  void add_target(SloTarget target);
  const std::vector<SloTarget>& targets() const { return targets_; }

  /// Sets the breach/recover listener. Events fire from inside observe()
  /// and flush(), in deterministic (window, service, kind) order.
  void set_listener(std::function<void(const HealthEvent&)> listener) {
    listener_ = std::move(listener);
  }

  /// Feeds one finished run. Observations must arrive in nondecreasing
  /// `finished` order (they do: the simulator is single-threaded).
  /// Windows that closed before this observation are evaluated first.
  void observe(const RunObservation& obs);

  /// Evaluates the in-progress window (end of run). Idempotent.
  void flush(sim::SimTime now);

  /// All events emitted so far, in emission order.
  const std::vector<HealthEvent>& events() const { return events_; }

  /// True when the service's last judged window breached (either axis).
  bool breached(const std::string& service) const;

  /// Per-service compliance over the whole stream: windows judged vs
  /// breached, run totals, worst window latency. One row per target.
  std::string compliance_table() const;

 private:
  struct Window {
    util::Histogram latency_ms;
    std::size_t total = 0;
    std::size_t ok = 0;
    // Attribution across runs that individually exceeded the latency
    // target (or failed), weighted by count.
    std::map<std::string, std::size_t> segments;
    std::map<std::string, std::size_t> tiers;
  };
  struct ServiceState {
    SloTarget target;
    Window window;
    bool latency_breached = false;
    bool availability_breached = false;
    // Lifetime stats for the compliance table.
    std::size_t windows_judged = 0;
    std::size_t latency_windows_breached = 0;
    std::size_t availability_windows_breached = 0;
    std::size_t runs = 0;
    std::size_t runs_ok = 0;
    double worst_latency_ms = 0.0;
  };

  void close_windows_before(sim::SimTime t);
  void judge(const std::string& service, ServiceState& state,
             sim::SimTime boundary);
  void emit(HealthEvent ev);

  Options options_;
  std::vector<SloTarget> targets_;
  std::map<std::string, ServiceState> states_;
  std::function<void(const HealthEvent&)> listener_;
  std::vector<HealthEvent> events_;
  sim::SimTime window_start_ = 0;
  bool saw_any_ = false;
};

}  // namespace vdap::telemetry::analysis
