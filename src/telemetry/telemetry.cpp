#include "telemetry/telemetry.hpp"

#include <algorithm>
#include <cmath>

#include "telemetry/flight.hpp"
#include "telemetry/prof/profiler.hpp"

namespace vdap::telemetry {

std::uint32_t Tracer::track(std::string_view name) {
  auto it = track_ids_.find(name);
  if (it != track_ids_.end()) return it->second;
  auto id = static_cast<std::uint32_t>(tracks_.size());
  tracks_.emplace_back(name);
  track_ids_.emplace(std::string(name), id);
  return id;
}

void Tracer::complete(sim::SimTime ts, sim::SimDuration dur,
                      std::string_view cat, std::string_view name,
                      std::string_view track, json::Object args) {
  TraceEvent ev;
  ev.ph = 'X';
  ev.ts = ts;
  ev.dur = dur < 0 ? 0 : dur;
  ev.tid = this->track(track);
  ev.cat = cat;
  ev.name = name;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
  if (internal::tls_flight != nullptr) {
    flight_span(FlightKind::kComplete, ts, cat, name, track, dur, 0.0);
  }
}

std::uint64_t Tracer::begin(sim::SimTime ts, std::string_view cat,
                            std::string_view name, std::string_view track,
                            json::Object args) {
  std::uint64_t id = next_span_++;
  TraceEvent ev;
  ev.ph = 'b';
  ev.ts = ts;
  ev.id = id;
  ev.tid = this->track(track);
  ev.cat = cat;
  ev.name = name;
  ev.args = std::move(args);
  OpenSpan open{ev.cat, ev.name, ev.tid, prof::kInvalidTag};
  // Mirror the span into the profiling plane (DESIGN.md §6j): the span
  // name becomes a tag frame on this thread's bound slot, so existing
  // Tracer instrumentation shows up in sampled profiles for free.
  if (prof::internal::tls_prof != nullptr) {
    open.prof_tag = prof::intern_tag(name);
    prof::internal::tls_prof->push(open.prof_tag);
  }
  open_[id] = std::move(open);
  events_.push_back(std::move(ev));
  if (internal::tls_flight != nullptr) {
    flight_span(FlightKind::kSpanBegin, ts, cat, name, track, 0, 0.0);
  }
  return id;
}

void Tracer::end(sim::SimTime ts, std::uint64_t id, json::Object args) {
  auto it = open_.find(id);
  if (it == open_.end()) return;  // unknown or already closed (or id 0)
  TraceEvent ev;
  ev.ph = 'e';
  ev.ts = ts;
  ev.id = id;
  ev.tid = it->second.tid;
  ev.cat = std::move(it->second.cat);
  ev.name = std::move(it->second.name);
  ev.args = std::move(args);
  // Unmirror from the profiling plane. pop_tag removes the topmost
  // matching frame, so out-of-order async closes cannot strand frames.
  if (it->second.prof_tag != prof::kInvalidTag &&
      prof::internal::tls_prof != nullptr) {
    prof::internal::tls_prof->pop_tag(it->second.prof_tag);
  }
  open_.erase(it);
  if (internal::tls_flight != nullptr) {
    // The mirror carries the span's identity by name, not id — span ids
    // are per-domain counters whose values depend on shard placement.
    flight_span(FlightKind::kSpanEnd, ts, ev.cat, ev.name,
                tracks_[ev.tid], 0, 0.0);
  }
  events_.push_back(std::move(ev));
}

void Tracer::instant(sim::SimTime ts, std::string_view cat,
                     std::string_view name, std::string_view track,
                     json::Object args) {
  TraceEvent ev;
  ev.ph = 'i';
  ev.ts = ts;
  ev.tid = this->track(track);
  ev.cat = cat;
  ev.name = name;
  ev.args = std::move(args);
  events_.push_back(std::move(ev));
  if (internal::tls_flight != nullptr) {
    flight_span(FlightKind::kInstant, ts, cat, name, track, 0, 0.0);
  }
}

void Tracer::counter(sim::SimTime ts, std::string_view track,
                     std::string_view name, double value) {
  if (!std::isfinite(value)) return;  // JSON has no NaN/Inf; drop the sample
  TraceEvent ev;
  ev.ph = 'C';
  ev.ts = ts;
  ev.tid = this->track(track);
  ev.cat = "metric";
  ev.name = name;
  ev.args["value"] = value;
  events_.push_back(std::move(ev));
  if (internal::tls_flight != nullptr) {
    flight_span(FlightKind::kCounter, ts, "metric", name, track, 0, value);
  }
}

std::vector<TraceEvent> Tracer::take_events() {
  std::vector<TraceEvent> out;
  out.swap(events_);
  return out;
}

void Tracer::clear() {
  events_.clear();
  tracks_.clear();
  track_ids_.clear();
  open_.clear();
  next_span_ = 1;
}

std::string labeled(std::string_view name, Labels labels) {
  if (labels.size() == 0) return std::string(name);
  // Sort label keys so the same set always canonicalizes identically.
  std::vector<std::pair<std::string_view, std::string_view>> sorted(labels);
  std::sort(sorted.begin(), sorted.end());
  std::string key(name);
  key += '{';
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) key += ',';
    first = false;
    key += k;
    key += '=';
    key += v;
  }
  key += '}';
  return key;
}

void MetricsRegistry::observe(std::string_view name, double value) {
  if (!std::isfinite(value)) return;  // keep digests (and JSONL) finite
  auto it = hists_.find(std::string(name));
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), util::Histogram{}).first;
    it->second.set_sample_cap(kHistogramSampleCap);
  }
  it->second.add(value);
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  counters_.merge(other.counters_);
  for (const auto& [name, value] : other.gauges_) gauges_[name] = value;
  for (const auto& [name, hist] : other.hists_) {
    auto it = hists_.find(name);
    if (it == hists_.end()) {
      it = hists_.emplace(name, util::Histogram{}).first;
      it->second.set_sample_cap(kHistogramSampleCap);
    }
    it->second.merge(hist);
  }
}

void MetricsRegistry::reset() {
  counters_.reset();
  gauges_.clear();
  hists_.clear();
}

Telemetry& Telemetry::instance() {
  static Telemetry t;
  return t;
}

}  // namespace vdap::telemetry
