// Runtime introspection of the sharded hot path, one row per worker shard
// (DESIGN.md §6h). These rows come from the *runtime plane*: wall-clock
// busy/wait split at the epoch barriers, event-queue occupancy peaks, and
// the hosted-ingest shard's lag/backpressure/pool counters. They are
// diagnostic, not deterministic — the byte-identity contract covers only
// the capture plane (domains.hpp), never this report.
//
// The JSONL form is the interchange format: run_fleet_scale emits it,
// bench_obs writes it next to the trace artifact, and `vdap-report
// --shards` parses it back and renders the table with a per-shard
// judgement from analysis::judge_shard_runtime.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vdap::telemetry {

struct ShardRuntimeRow {
  int shard = 0;
  std::uint64_t epochs = 0;
  std::uint64_t events = 0;     // sim events fired by this shard
  double busy_s = 0.0;          // wall-clock seconds inside epoch work
  double wait_s = 0.0;          // wall-clock seconds stalled at barriers
  std::uint64_t queue_peak = 0;     // live pending events, peak
  std::uint64_t wheel_peak = 0;     // calendar-wheel physical entries, peak
  std::uint64_t overflow_peak = 0;  // overflow-heap entries, peak
  // Hosted-ingest plane; all zero when no ingest backend rode the shards.
  std::uint64_t frames = 0;
  std::uint64_t samples = 0;
  std::uint64_t ring_late = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t backlog_peak = 0;  // frames decoded between two barriers, peak
  std::int64_t lag_us_peak = 0;    // merged watermark - shard watermark, peak
  std::uint64_t pool_hits = 0;     // block-pool column+buffer reuses
  std::uint64_t pool_misses = 0;   // block-pool column+buffer fresh allocs
  std::uint64_t pool_free = 0;     // block-pool free-list occupancy at end
  // Flight-recorder plane; all zero when no recorder rode the shards.
  std::uint64_t flight_records = 0;  // records this shard's scratch ring saw
  std::uint64_t flight_dropped = 0;  // records lost to fold-lag overwrites
};

/// One JSON object per shard, one line per object.
std::string shards_report_jsonl(const std::vector<ShardRuntimeRow>& rows);

/// Like shards_report_jsonl, plus a "judgement" key per row carrying
/// analysis::judge_shard_runtime's verdict — the machine-readable form of
/// the --shards table (`vdap-report --shards --json`). Key order is the
/// std::map serialization order, stable across runs.
std::string shards_report_judged_jsonl(const std::vector<ShardRuntimeRow>& rows);

/// Parses shards_report_jsonl output. Returns false (with *error set) on
/// malformed input; unknown keys are ignored for forward compatibility.
bool parse_shards_report(std::string_view text,
                         std::vector<ShardRuntimeRow>* rows,
                         std::string* error);

/// The table `vdap-report --shards` prints: one row per shard plus the
/// judgement column from analysis::judge_shard_runtime.
std::string shards_report_table(const std::vector<ShardRuntimeRow>& rows);

}  // namespace vdap::telemetry

namespace vdap::telemetry::analysis {

/// Runtime-plane judgement for one shard row: "ok", or a comma-joined list
/// drawn from "imbalanced" (>25% of the shard's wall time spent waiting at
/// barriers, once the run is long enough to judge), "overflow" (events
/// spilled past the calendar horizon), "backpressure" (ring-late sample
/// drops), "decode-errors", and "flight-drops" (the shard's flight scratch
/// ring overwrote records between folds — size flight_opts up).
std::string judge_shard_runtime(const ShardRuntimeRow& row);

}  // namespace vdap::telemetry::analysis
