// vdap-report: offline trace analytics (DESIGN.md §6d, §6e, §6g, §6h).
//
//   vdap-report <trace.json> [metrics.jsonl]
//   vdap-report --fleet <frames.jsonl> [--query "<expr>"]...
//   vdap-report --shards <shards.jsonl> [--json]
//   vdap-report --incident <incident-dir>
//   vdap-report --profile <profile.jsonl> [--diff <baseline.jsonl>]
//
// Trace mode reads a chrome_trace_json() capture (and optionally the JSONL
// metrics snapshots Session emits), then prints:
//   1. the per-service critical-path table — each run's latency decomposed
//      by interval sweep into exclusive queue/net/compute/failover/slack
//      segments (see telemetry/analysis/critical_path.hpp);
//   2. the health-timeline table — every closed-loop HealthController
//      instant (breaches, tier demotions with the blaming services, and
//      restores), i.e. when and why the loop acted;
//   3. the SLO-compliance table — the Table I targets replayed over the
//      extracted runs through the streaming evaluator;
//   4. with a metrics file, the final snapshot's counters and histogram
//      digests.
//
// Fleet mode replays a stream of TelemetryShipper wire frames (e.g.
// FleetOutcome::frames_jsonl) through the sharded columnar ingest
// backend and prints the cross-vehicle rollup, anomaly and per-vehicle
// transport tables, then one table per --query expression (the DDI-style
// range / near grammar of telemetry/fleet/query.hpp).
//
// Shards mode renders a runtime-plane shard report (the shards.jsonl a
// sharded run always emits — see telemetry/shard_report.hpp): per-shard
// busy/wait time, queue/wheel/overflow peaks, ingest backlog and lag
// watermarks, block-pool hit rate, plus a judgement column (imbalanced /
// overflow / backpressure / decode-errors / ok). Unlike the other modes
// this input is wall-clock derived, so it is diagnostic, not part of the
// byte-identity contract.
//
// Incident mode renders a flight-recorder bundle (DESIGN.md §6i): the
// manifest context, per-kind record counts, a blame table built from the
// recorded health-edge tier attributions and fault targets, and the full
// merged timeline. Works on both orderly (barrier-snapshotted) and crash
// (signal-handler-streamed) bundles.
//
// Profile mode renders a continuous-profiling artifact (DESIGN.md §6j —
// the profile.jsonl a sampled run emits next to shards.jsonl): the top-N
// frames by self samples with self/total shares. With --diff it renders
// the per-frame self-share delta between a candidate and a baseline
// profile instead — the table that names the code region a bench-gate
// wall regression landed in. Wall-clock sampled, diagnostic only.
//
// Any unknown flag, or a flag missing its argument, prints the usage
// line to stderr and exits 2.
//
// Output is a pure function of the input files, so for a fixed
// (seed, fault plan) capture the tables are byte-identical across runs —
// the analysis and fleet suites assert this.
#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include <vector>

#include "telemetry/analysis/critical_path.hpp"
#include "telemetry/analysis/slo.hpp"
#include "telemetry/fleet/ingest.hpp"
#include "telemetry/flight.hpp"
#include "telemetry/prof/report.hpp"
#include "telemetry/shard_report.hpp"
#include "util/stats.hpp"

namespace {

namespace analysis = vdap::telemetry::analysis;

int usage(std::FILE* to) {
  std::fprintf(
      to,
      "usage: vdap-report <trace.json> [metrics.jsonl]\n"
      "       vdap-report --fleet <frames.jsonl> [--query \"<expr>\"]...\n"
      "       vdap-report --shards <shards.jsonl> [--json]\n"
      "       vdap-report --incident <incident-dir>\n"
      "       vdap-report --profile <profile.jsonl> [--diff <baseline>]\n"
      "\n"
      "modes:\n"
      "  <trace.json> [metrics.jsonl]   critical-path, health-timeline and\n"
      "                                 SLO tables from a chrome trace\n"
      "  --fleet <frames.jsonl>         replay wire frames through the\n"
      "                                 ingest backend; --query runs DDI-\n"
      "                                 style expressions against it\n"
      "  --shards <shards.jsonl>        runtime-plane shard report with\n"
      "                                 per-shard judgements; --json emits\n"
      "                                 judged rows as JSONL instead\n"
      "  --incident <incident-dir>      blame-annotated timeline of a\n"
      "                                 flight-recorder incident bundle\n"
      "  --profile <profile.jsonl>      top frames by sampled self time;\n"
      "                                 --diff renders the per-frame delta\n"
      "                                 against a baseline profile\n");
  return to == stdout ? 0 : 2;
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::ostringstream ss;
  ss << f.rdbuf();
  *out = ss.str();
  return true;
}

/// Non-"on-board" tier with the most exclusive time; "on-board" if none.
std::string implicated_tier(const analysis::RunCriticalPath& run) {
  std::string best = "on-board";
  vdap::sim::SimDuration top = -1;
  for (const auto& [tier, d] : run.tier_time) {
    if (tier != "on-board" && d > top) {
      top = d;
      best = tier;
    }
  }
  return best;
}

/// Replays the extracted runs through the SLO evaluator (Table I targets).
std::string slo_table(const analysis::CriticalPathReport& report) {
  analysis::SloEvaluator evaluator;
  for (analysis::SloTarget& t : analysis::standard_slos()) {
    evaluator.add_target(std::move(t));
  }
  vdap::sim::SimTime last = 0;
  for (const analysis::RunCriticalPath& run : report.runs) {
    analysis::RunObservation obs;
    obs.service = run.service;
    obs.finished = run.finished;
    obs.latency = run.latency();
    obs.ok = run.ok;
    obs.dominant_segment = std::string(run.segments.dominant());
    obs.implicated_tier = implicated_tier(run);
    evaluator.observe(obs);
    last = std::max(last, run.finished);
  }
  evaluator.flush(last);
  return evaluator.compliance_table();
}

/// The closed-loop health timeline: every HealthController instant on the
/// "health" track, in trace order. The "detail" column carries the event's
/// most useful argument — the breaching service, or for penalize/restore
/// the services blaming the tier (why the loop acted).
std::string health_timeline(const std::vector<vdap::telemetry::TraceEvent>& events,
                            const std::vector<std::string>& tracks) {
  vdap::util::TextTable t("health timeline (closed-loop actions)");
  t.set_header({"t(s)", "event", "tier", "detail"});
  std::size_t rows = 0;
  for (const vdap::telemetry::TraceEvent& ev : events) {
    if (ev.ph != 'i' || ev.cat != "health") continue;
    if (ev.tid >= tracks.size() || tracks[ev.tid] != "health") continue;
    const vdap::json::Value wrapper{ev.args};
    std::string tier = wrapper.get_string("tier");
    std::string detail;
    if (ev.name == "health.penalize" || ev.name == "health.restore") {
      detail = "services=" + wrapper.get_string("services");
      if (ev.name == "health.penalize") {
        detail += " factor=" +
                  vdap::util::TextTable::num(wrapper.get_double("factor"), 2);
      }
    } else {
      detail = wrapper.get_string("service");
      if (const vdap::json::Value* observed = ev.args.count("observed") != 0
                                                  ? &ev.args.at("observed")
                                                  : nullptr) {
        detail += " observed=" +
                  vdap::util::TextTable::num(observed->as_double(), 3);
      }
    }
    t.add_row({vdap::util::TextTable::num(vdap::sim::to_seconds(ev.ts), 3),
               ev.name, tier.empty() ? "-" : tier, detail});
    ++rows;
  }
  return rows > 0 ? t.to_string() : std::string();
}

/// Fleet mode: replay a wire-frame JSONL stream through the sharded
/// columnar ingest backend, then run any --query expressions against it.
int print_fleet(const std::string& text,
                const std::vector<std::string>& queries) {
  vdap::telemetry::fleet::ShardedIngestBackend backend;
  std::istringstream lines(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    ++n;
    std::string error;
    if (!backend.ingest_line(line, &error)) {
      if (!error.empty()) {
        std::fprintf(stderr, "vdap-report: frame %zu: %s\n", n, error.c_str());
      }
      // Duplicates and decode errors are both tolerated — that is the
      // backend's job — but decode errors are reported above.
    }
    // A barrier per line keeps the replay's detection cadence as fine as
    // the stream itself (the watermark only moves when frames do).
    backend.barrier();
  }
  if (n == 0) {
    std::fprintf(stderr, "vdap-report: no frames\n");
    return 1;
  }
  std::fputs(backend.rollup_table().c_str(), stdout);
  std::fputs(backend.anomaly_table().c_str(), stdout);
  std::fputs(backend.vehicle_table().c_str(), stdout);
  bool query_error = false;
  for (const std::string& q : queries) {
    std::string error;
    const std::string table = backend.run_query_text(q, &error);
    if (table.empty()) {
      std::fprintf(stderr, "vdap-report: %s\n", error.c_str());
      query_error = true;
      continue;
    }
    std::fputs(table.c_str(), stdout);
  }
  return backend.decode_errors() > 0 || query_error ? 1 : 0;
}

/// Renders the last JSONL metrics snapshot (counters + histogram digests).
int print_metrics(const std::string& text) {
  std::optional<vdap::json::Value> last;
  std::istringstream lines(text);
  std::string line;
  std::size_t n = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::optional<vdap::json::Value> v = vdap::json::try_parse(line);
    if (!v.has_value()) {
      std::fprintf(stderr, "vdap-report: bad JSONL line %zu\n", n + 1);
      return 1;
    }
    last = std::move(v);
    ++n;
  }
  if (!last.has_value()) return 0;

  vdap::util::TextTable counters("final counters (t=" +
                                 std::to_string(last->get_int("t")) + " us, " +
                                 std::to_string(n) + " snapshots)");
  counters.set_header({"counter", "value"});
  if (const vdap::json::Value* c = last->find("counters");
      c != nullptr && c->is_object()) {
    for (const auto& [name, v] : c->as_object()) {
      counters.add_row({name, std::to_string(v.as_int())});
    }
  }
  std::fputs(counters.to_string().c_str(), stdout);

  vdap::util::TextTable hists("final histograms");
  hists.set_header({"histogram", "count", "mean", "p50", "p95", "p99"});
  if (const vdap::json::Value* h = last->find("histograms");
      h != nullptr && h->is_object()) {
    for (const auto& [name, digest] : h->as_object()) {
      hists.add_row({name, std::to_string(digest.get_int("count")),
                     vdap::util::TextTable::num(digest.get_double("mean"), 3),
                     vdap::util::TextTable::num(digest.get_double("p50"), 3),
                     vdap::util::TextTable::num(digest.get_double("p95"), 3),
                     vdap::util::TextTable::num(digest.get_double("p99"), 3)});
    }
  }
  std::fputs(hists.to_string().c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc >= 2 ? argv[1] : "";
  if (mode == "--help" || mode == "-h") return usage(stdout);
  if (mode == "--fleet") {
    if (argc < 3) return usage(stderr);  // missing <frames.jsonl>
    std::vector<std::string> queries;
    for (int i = 3; i < argc; i += 2) {
      if (std::string(argv[i]) != "--query" || i + 1 >= argc) {
        return usage(stderr);  // unknown flag or --query without an expr
      }
      queries.emplace_back(argv[i + 1]);
    }
    std::string frames_text;
    if (!read_file(argv[2], &frames_text)) {
      std::fprintf(stderr, "vdap-report: cannot read %s\n", argv[2]);
      return 1;
    }
    return print_fleet(frames_text, queries);
  }
  if (mode == "--incident") {
    if (argc != 3) return usage(stderr);  // missing (or extra) <incident-dir>
    std::string error;
    const std::string report =
        vdap::telemetry::render_incident_dir(argv[2], &error);
    if (report.empty()) {
      std::fprintf(stderr, "vdap-report: %s\n", error.c_str());
      return 1;
    }
    std::fputs(report.c_str(), stdout);
    return 0;
  }
  if (mode == "--shards") {
    // <shards.jsonl> plus an optional --json; anything else is usage.
    if (argc != 3 && argc != 4) return usage(stderr);
    const bool as_json = argc == 4;
    if (as_json && std::string(argv[3]) != "--json") return usage(stderr);
    std::string text;
    if (!read_file(argv[2], &text)) {
      std::fprintf(stderr, "vdap-report: cannot read %s\n", argv[2]);
      return 1;
    }
    std::vector<vdap::telemetry::ShardRuntimeRow> rows;
    std::string error;
    if (!vdap::telemetry::parse_shards_report(text, &rows, &error)) {
      std::fprintf(stderr, "vdap-report: %s: %s\n", argv[2], error.c_str());
      return 1;
    }
    if (as_json) {
      std::fputs(vdap::telemetry::shards_report_judged_jsonl(rows).c_str(),
                 stdout);
    } else {
      std::fputs(vdap::telemetry::shards_report_table(rows).c_str(), stdout);
    }
    return 0;
  }
  if (mode == "--profile") {
    // <profile.jsonl> plus an optional --diff <baseline>; anything else
    // is usage.
    if (argc != 3 && argc != 5) return usage(stderr);
    const bool diff = argc == 5;
    if (diff && std::string(argv[3]) != "--diff") return usage(stderr);
    std::string text;
    if (!read_file(argv[2], &text)) {
      std::fprintf(stderr, "vdap-report: cannot read %s\n", argv[2]);
      return 1;
    }
    vdap::telemetry::prof::ProfileData cand;
    std::string error;
    if (!vdap::telemetry::prof::parse_profile_jsonl(text, &cand, &error)) {
      std::fprintf(stderr, "vdap-report: %s: %s\n", argv[2], error.c_str());
      return 1;
    }
    if (diff) {
      std::string base_text;
      if (!read_file(argv[4], &base_text)) {
        std::fprintf(stderr, "vdap-report: cannot read %s\n", argv[4]);
        return 1;
      }
      vdap::telemetry::prof::ProfileData base;
      if (!vdap::telemetry::prof::parse_profile_jsonl(base_text, &base,
                                                      &error)) {
        std::fprintf(stderr, "vdap-report: %s: %s\n", argv[4], error.c_str());
        return 1;
      }
      std::fputs(
          vdap::telemetry::prof::profile_diff_table(base, cand).c_str(),
          stdout);
    } else {
      std::fputs(vdap::telemetry::prof::profile_table(cand).c_str(), stdout);
    }
    return 0;
  }
  // Trace mode takes 1-2 positional paths; any flag here is unknown.
  if (argc < 2 || argc > 3 || mode[0] == '-') return usage(stderr);
  std::string trace_text;
  if (!read_file(argv[1], &trace_text)) {
    std::fprintf(stderr, "vdap-report: cannot read %s\n", argv[1]);
    return 1;
  }
  std::vector<vdap::telemetry::TraceEvent> events;
  std::vector<std::string> tracks;
  std::string error;
  if (!analysis::parse_chrome_trace(trace_text, &events, &tracks, &error)) {
    std::fprintf(stderr, "vdap-report: %s: %s\n", argv[1], error.c_str());
    return 1;
  }
  analysis::CriticalPathReport report =
      analysis::extract_critical_paths(events, tracks);
  std::fputs(analysis::critical_path_table(report).c_str(), stdout);
  std::fputs(health_timeline(events, tracks).c_str(), stdout);
  std::fputs(slo_table(report).c_str(), stdout);

  if (argc == 3) {
    std::string metrics_text;
    if (!read_file(argv[2], &metrics_text)) {
      std::fprintf(stderr, "vdap-report: cannot read %s\n", argv[2]);
      return 1;
    }
    return print_metrics(metrics_text);
  }
  return 0;
}
