// Quickstart: boot an OpenVDAP vehicle, install the paper's service
// portfolio, run a few services, and poke the libvdap RESTful API.
//
//   $ ./quickstart
//
// Walks the full stack: VCU (heterogeneous board + DSF) → EdgeOSv (elastic
// pipelines, TEE/containers) → two-tier offloading → DDI → libvdap.
#include <cstdio>

#include "core/platform.hpp"
#include "workload/apps.hpp"

using namespace vdap;

int main() {
  std::printf("OpenVDAP quickstart\n===================\n\n");

  // 1. One simulated vehicle with the reference 1stHEP and remote tiers.
  sim::Simulator sim(/*seed=*/7);
  core::PlatformConfig cfg;
  cfg.vehicle_name = "demo-cav";
  cfg.start_collectors = true;  // OBD/weather/traffic feeds into DDI
  core::OpenVdap cav(sim, cfg);

  std::printf("VCU board '%s' (%.0f W max power budget):\n",
              cav.board().name().c_str(), cav.board().max_power_w());
  for (const auto& dev : cav.board().devices()) {
    std::printf("  %-18s %-6s %d slot(s), %.0f W max\n",
                dev->name().c_str(),
                std::string(hw::to_string(dev->spec().kind)).c_str(),
                dev->spec().slots, dev->spec().max_power_w);
  }

  // 2. Install the polymorphic service portfolio.
  cav.install_standard_services();
  std::printf("\nInstalled services (isolation mode):\n");
  for (const std::string& svc : cav.os().security().services()) {
    std::printf("  %-24s %s\n", svc.c_str(),
                std::string(edgeos::to_string(cav.os().security().mode(svc)))
                    .c_str());
  }

  // 3. Run a few services; the elastic manager picks each one's pipeline.
  std::printf("\nRunning services (elastic pipeline choice):\n");
  for (const char* svc : {"lane-detection", "pedestrian-alert",
                          "license-plate", "a3-kidnapper-search",
                          "obd-diagnostics"}) {
    cav.run_service(svc, [svc](const edgeos::ServiceRunReport& r) {
      std::printf("  %-24s %-18s %8.2f ms  %s\n", svc, r.pipeline.c_str(),
                  sim::to_millis(r.latency()),
                  r.deadline_met ? "deadline met" : "DEADLINE MISS");
    });
  }
  sim.run_until(sim::seconds(30));

  // 4. Where would a heavy job go right now?
  auto decision = cav.offload().decide(workload::apps::vehicle_detection_tf());
  std::printf("\nOffload planner: TensorFlow vehicle detection -> %s "
              "(est. %.1f ms, %.2f J on the vehicle)\n",
              std::string(net::to_string(decision.tier)).c_str(),
              sim::to_millis(decision.est_latency),
              decision.onboard_energy_j);

  // 5. Query the libvdap RESTful API.
  std::printf("\nlibvdap API:\n");
  auto models = cav.api().get("/v1/models/inception-v3-edge");
  std::printf("  GET /v1/models/inception-v3-edge -> %d\n  %s\n",
              models.status, models.body.dump().c_str());
  json::Value q;
  q["stream"] = "vehicle/obd";
  q["t0"] = 0;
  q["t1"] = sim.now();
  auto data = cav.api().post("/v1/data/query", q);
  std::printf("  POST /v1/data/query (vehicle/obd) -> %d, %zu records "
              "(from_cache=%s)\n",
              data.status, data.body.at("records").size(),
              data.body.get_bool("from_cache") ? "true" : "false");

  // 6. DEIR report.
  auto deir = cav.os().deir_report();
  std::printf("\nDEIR: %zu services on %zu devices, %llu bus auth "
              "rejections, %llu reinstalls\n",
              deir.installed_services, deir.registered_devices,
              static_cast<unsigned long long>(deir.bus_rejected_auth),
              static_cast<unsigned long long>(deir.reinstalls));
  std::printf("\nDone: %llu service runs completed, %llu failed.\n",
              static_cast<unsigned long long>(cav.elastic().completed()),
              static_cast<unsigned long long>(cav.elastic().failed()));
  return 0;
}
