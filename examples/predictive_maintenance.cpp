// Predictive maintenance + driver profiling — the §II-A diagnostics story
// plus the §IV-E pBEAM story, end to end through DDI and the libvdap API:
//
//   1. the DDI collectors record a 30-minute drive (OBD + environment);
//   2. diagnostics trends are computed from the stored data (coolant,
//      tire pressure) and faults are flagged;
//   3. cBEAM is trained on a synthetic fleet "in the cloud", Deep-
//      Compressed, transfer-learned on this driver's real DDI windows;
//   4. a third party (the insurance example) queries the driver's score
//      through the RESTful API.
//
//   $ ./predictive_maintenance
#include <cstdio>

#include "core/platform.hpp"
#include "libvdap/pbeam.hpp"
#include "util/strings.hpp"

using namespace vdap;
using libvdap::DrivingFeatures;

int main() {
  std::printf("OpenVDAP predictive maintenance & pBEAM example\n");
  std::printf("===============================================\n\n");

  sim::Simulator sim(1618);
  core::PlatformConfig cfg;
  cfg.vehicle_name = "family-sedan";
  cfg.start_collectors = true;
  core::OpenVdap cav(sim, cfg);

  // --- 1. a 30-minute drive fills DDI ------------------------------------
  std::printf("Driving for 30 simulated minutes (collectors on)...\n");
  sim.run_until(sim::minutes(30));
  auto obd = cav.ddi().download_now({"vehicle/obd", 0, sim.now()});
  std::printf("DDI holds %zu OBD records (%llu already persisted to "
              "disk segments).\n\n",
              obd.records.size(),
              static_cast<unsigned long long>(
                  cav.ddi().disk().record_count()));

  // --- 2. diagnostics from stored data -------------------------------------
  const auto& first = obd.records.front();
  const auto& last = obd.records.back();
  double tire_delta = last.payload.get_double("tire_psi") -
                      first.payload.get_double("tire_psi");
  double coolant_max = 0.0;
  for (const auto& r : obd.records) {
    coolant_max = std::max(coolant_max, r.payload.get_double("coolant_c"));
  }
  std::printf("Diagnostics sweep:\n");
  std::printf("  odometer         +%.1f km\n",
              (last.payload.get_double("odometer_m") -
               first.payload.get_double("odometer_m")) / 1000.0);
  std::printf("  tire pressure    %+.2f psi over the drive %s\n", tire_delta,
              tire_delta < -0.5 ? "(FLAG: slow leak suspected)" : "(ok)");
  std::printf("  coolant peak     %.1f C %s\n\n", coolant_max,
              coolant_max > 105.0 ? "(FLAG: overheating)" : "(ok)");

  // --- 3. cBEAM -> compress -> personalize ----------------------------------
  util::RngStream rng(99);
  std::printf("Training cBEAM on a synthetic 900-driver fleet (cloud "
              "side)...\n");
  libvdap::PBeam pbeam =
      libvdap::PBeam::build(libvdap::synth_fleet_dataset(300, rng), {}, rng);
  std::printf("  compressed %s -> %s (%.1fx, sparsity %.0f%%)\n",
              util::human_bytes(pbeam.compression().dense_bytes).c_str(),
              util::human_bytes(pbeam.compression().compressed_bytes).c_str(),
              pbeam.compression().ratio(),
              100.0 * pbeam.compression().sparsity);

  // Personalize on this driver's own windows: slice the drive into
  // 1-minute windows and label them with the driver's style (the collector
  // models a normal commuter).
  libvdap::Dataset driver_data;
  constexpr std::size_t kWindow = 600;  // one minute at 10 Hz
  for (std::size_t start = 0; start + kWindow <= obd.records.size();
       start += kWindow) {
    std::vector<ddi::DataRecord> window(
        obd.records.begin() + static_cast<long>(start),
        obd.records.begin() + static_cast<long>(start + kWindow));
    libvdap::LabeledSample s;
    s.features = libvdap::features_from_records(window).to_vector();
    s.label = static_cast<int>(libvdap::DrivingStyle::kNormal);
    driver_data.push_back(std::move(s));
  }
  std::printf("  transfer-learning on %zu one-minute windows from DDI...\n",
              driver_data.size());
  // Rehearsal: mix a slice of fleet data back in so fine-tuning on a
  // single driver's (single-style) windows does not forget the other
  // classes.
  for (auto& s : libvdap::synth_fleet_dataset(30, rng)) {
    driver_data.push_back(std::move(s));
  }
  pbeam.personalize(driver_data, rng);
  cav.api().attach_pbeam(std::move(pbeam));

  // --- 4. the insurance company asks over the API ---------------------------
  std::vector<ddi::DataRecord> last_window(
      obd.records.end() - static_cast<long>(kWindow), obd.records.end());
  DrivingFeatures f = libvdap::features_from_records(last_window);
  json::Value body;
  body["mean_speed_mps"] = f.mean_speed_mps;
  body["speed_stddev"] = f.speed_stddev;
  body["accel_stddev"] = f.accel_stddev;
  body["harsh_brake_rate"] = f.harsh_brake_rate;
  body["harsh_accel_rate"] = f.harsh_accel_rate;
  body["mean_abs_jerk"] = f.mean_abs_jerk;
  body["overspeed_frac"] = f.overspeed_frac;
  auto resp = cav.api().post("/v1/pbeam/score", body);
  std::printf("\nPOST /v1/pbeam/score -> %d\n  %s\n", resp.status,
              resp.body.dump().c_str());
  auto info = cav.api().get("/v1/pbeam");
  std::printf("GET /v1/pbeam -> %s\n", info.body.dump().c_str());
  std::printf("\nThe insurer sees a style and a score — never the raw GPS "
              "trace (section III-D privacy).\n");
  return 0;
}
