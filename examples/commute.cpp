// A 20-minute commute — the platform living through changing conditions
// (§IV-C's elastic management story end to end).
//
// The vehicle drives city → arterial → highway → city. RSU coverage comes
// and goes, cellular quality tracks speed, a passenger's phone joins the
// 2ndHEP mid-drive, and a third-party service gets compromised on the
// highway and is reinstalled by the security monitor. Periodic services run
// throughout; the example prints a per-segment adaptation timeline.
//
//   $ ./commute
#include <cstdio>
#include <map>

#include "core/platform.hpp"
#include "ddi/cloudsync.hpp"
#include "util/strings.hpp"
#include "workload/apps.hpp"

using namespace vdap;

int main() {
  std::printf("OpenVDAP commute example (20-minute drive)\n");
  std::printf("==========================================\n\n");

  sim::Simulator sim(314);
  core::PlatformConfig cfg;
  cfg.vehicle_name = "commuter";
  cfg.start_collectors = true;
  core::OpenVdap cav(sim, cfg);
  cav.install_standard_services();

  core::DriveScenario scenario(sim, cav.topology(),
                               core::DriveScenario::commute(),
                               &cav.elastic());
  scenario.start();

  // Opportunistic migration of DDI data to the community cloud server
  // (section IV-A): syncs while parked or in the city, defers on the highway.
  ddi::CloudSync cloud_sync(sim, cav.ddi(), cav.topology());
  cloud_sync.start();

  // --- periodic services -------------------------------------------------
  struct SegmentStats {
    std::map<std::string, int> pipelines;
    util::Summary latency_ms;
    int ok = 0, failed = 0;
  };
  std::map<int, SegmentStats> per_segment;

  auto release = [&](const char* svc) {
    int seg = scenario.current_segment();
    cav.run_service(svc, [&, seg](const edgeos::ServiceRunReport& r) {
      SegmentStats& st = per_segment[seg];
      if (r.ok) {
        st.ok++;
        st.pipelines[r.pipeline]++;
        st.latency_ms.add(sim::to_millis(r.latency()));
      } else {
        st.failed++;
      }
    });
  };
  sim.every(sim::msec(500), [&] { release("license-plate"); });
  sim.every(sim::seconds(2), [&] { release("a3-kidnapper-search"); });
  sim.every(sim::seconds(10), [&] { release("obd-diagnostics"); });
  sim.every(sim::seconds(2), [&] { release("infotainment-chunk"); });

  // --- mid-drive events -----------------------------------------------------
  // A passenger's phone joins the 2ndHEP during the arterial stretch...
  auto phone = std::make_unique<hw::ComputeDevice>(
      sim, hw::catalog::phone_soc());
  sim.at(sim::minutes(6), [&] {
    cav.registry().join(phone.get());
    std::printf("[t=%6.0f s] 2ndHEP: passenger phone joined the VCU "
                "registry\n",
                sim::to_seconds(sim.now()));
  });
  // ...and leaves when the passenger gets out near the end.
  sim.at(sim::minutes(18), [&] {
    cav.registry().leave("phone-soc");
    std::printf("[t=%6.0f s] 2ndHEP: passenger phone left\n",
                sim::to_seconds(sim.now()));
  });
  // An internal attack on the infotainment container on the highway.
  sim.at(sim::minutes(10), [&] {
    bool hit = cav.os().security().compromise("infotainment-chunk");
    std::printf("[t=%6.0f s] ATTACK on infotainment-chunk: %s\n",
                sim::to_seconds(sim.now()),
                hit ? "container compromised" : "resisted");
  });
  cav.os().security().on_reinstall([&](const std::string& svc) {
    std::printf("[t=%6.0f s] security monitor reinstalled '%s' (fresh "
                "credential)\n",
                sim::to_seconds(sim.now()), svc.c_str());
  });

  sim.run_until(sim::from_seconds(scenario.total_duration_s()));

  // --- timeline ----------------------------------------------------------------
  static const char* kSegmentNames[] = {"parked",   "city (neighbor)",
                                        "arterial", "highway (no RSU)",
                                        "arterial", "city (neighbor)"};
  std::printf("\nAdaptation timeline (pipeline mix per segment):\n");
  for (const auto& [seg, st] : per_segment) {
    if (seg < 0) continue;
    std::printf("  segment %d %-18s %4d ok %3d failed  mean %6.1f ms  ",
                seg, kSegmentNames[seg], st.ok, st.failed,
                st.latency_ms.mean());
    for (const auto& [pipeline, n] : st.pipelines) {
      std::printf("[%s x%d] ", pipeline.c_str(), n);
    }
    std::printf("\n");
  }

  // --- DDI accumulated the drive --------------------------------------------
  auto obd = cav.ddi().download_now(
      {"vehicle/obd", 0, sim.now()});
  auto weather = cav.ddi().download_now({"env/weather", 0, sim.now()});
  std::printf("\nDDI collected %zu OBD records and %zu weather records; "
              "%llu on disk, %llu staged.\n",
              obd.records.size(), weather.records.size(),
              static_cast<unsigned long long>(cav.ddi().disk().record_count()),
              static_cast<unsigned long long>(cav.ddi().staged_count()));

  std::printf("CloudSync migrated %llu records (%s) to the community data "
              "server; %llu syncs deferred on bad cellular; backlog %llu.\n",
              static_cast<unsigned long long>(cloud_sync.records_synced()),
              util::human_bytes(cloud_sync.bytes_synced()).c_str(),
              static_cast<unsigned long long>(
                  cloud_sync.skipped_bad_network()),
              static_cast<unsigned long long>(cloud_sync.backlog()));

  auto deir = cav.os().deir_report();
  std::printf("DEIR: %llu compromises detected, %llu reinstalls, %zu "
              "services hung right now.\n",
              static_cast<unsigned long long>(deir.compromises_detected),
              static_cast<unsigned long long>(deir.reinstalls),
              deir.hung_services);
  std::printf("Vehicle energy over the drive: %.1f kJ (avg %.1f W)\n",
              cav.board().energy_joules() / 1000.0,
              cav.board().energy_joules() / scenario.total_duration_s());
  return 0;
}
