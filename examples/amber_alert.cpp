// AMBER-alert scenario — the paper's running third-party example: searching
// for a kidnapper's vehicle with the mobile A3 service (§II-D, §IV-C,
// after [15]).
//
// Three CAVs drive the same corridor. Each runs the A3 polymorphic service
// (motion detection → plate detection → plate recognition → watchlist
// match), offloading per its own conditions, and shares recognized plates
// with the platoon over DSRC so followers skip recognitions the leader
// already did. When a plate matches the watchlist, the result is reported
// under the vehicle's rotating pseudonym.
//
//   $ ./amber_alert
#include <cstdio>
#include <set>

#include "core/platform.hpp"
#include "workload/apps.hpp"

using namespace vdap;

int main() {
  std::printf("OpenVDAP AMBER-alert (mobile A3) example\n");
  std::printf("========================================\n\n");

  sim::Simulator sim(2718);
  const char* kWatchlist = "plate:KDN-4PR";

  // --- a three-vehicle platoon ----------------------------------------------
  std::vector<std::unique_ptr<core::OpenVdap>> fleet;
  for (int v = 0; v < 3; ++v) {
    core::PlatformConfig cfg;
    cfg.vehicle_name = "cav-" + std::to_string(v);
    cfg.vehicle_secret = 0x1000 + static_cast<std::uint64_t>(v);
    fleet.push_back(std::make_unique<core::OpenVdap>(sim, cfg));
    fleet.back()->install_standard_services();
  }
  for (std::size_t v = 0; v + 1 < fleet.size(); ++v) {
    core::CollaborationCache::connect(fleet[v]->collaboration(),
                                      fleet[v + 1]->collaboration());
  }
  std::printf("Platoon of %zu vehicles, DSRC-chained; watchlist entry %s\n\n",
              fleet.size(), kWatchlist);

  // --- the drive --------------------------------------------------------------
  // Every vehicle sees a plate every 2 s; sighting streams overlap ~60%
  // between neighbors. The kidnapper's plate appears to vehicle 1 at t=90 s.
  struct Stats {
    int sightings = 0;
    int recognitions = 0;
    int reused = 0;
    util::Summary pipeline_ms;
  };
  std::vector<Stats> stats(fleet.size());
  bool alert_raised = false;

  auto sight = [&](std::size_t v, const std::string& plate_key) {
    Stats& st = stats[v];
    st.sightings++;
    fleet[v]->collaboration().lookup(
        plate_key,
        [&, v, plate_key](std::optional<core::SharedResult> cached) {
          Stats& s = stats[v];
          if (cached.has_value()) {
            s.reused++;  // a platoon member already decoded this plate
            return;
          }
          // Run the full A3 pipeline through the elastic manager.
          sim::SimTime started = sim.now();
          fleet[v]->run_service(
              "a3-kidnapper-search",
              [&, v, plate_key, started](const edgeos::ServiceRunReport& r) {
                Stats& s2 = stats[v];
                if (!r.ok) return;
                s2.recognitions++;
                s2.pipeline_ms.add(sim::to_millis(sim.now() - started));
                fleet[v]->collaboration().put(plate_key,
                                              json::Value("decoded"));
                if (plate_key == kWatchlist && !alert_raised) {
                  alert_raised = true;
                  std::printf(
                      "[t=%7.1f s] MATCH: %s sighted by %s (reported as %s, "
                      "pipeline '%s')\n",
                      sim::to_seconds(sim.now()), plate_key.c_str(),
                      fleet[v]->name().c_str(),
                      fleet[v]->collaboration().pseudonym().c_str(),
                      r.pipeline.c_str());
                }
              });
        });
  };

  for (std::size_t v = 0; v < fleet.size(); ++v) {
    sim.every(sim::seconds(2), [&, v] {
      // Overlapping plate streams: follower v sees ~60% of what v-1 saw.
      long tick = sim.now() / sim::seconds(2);
      long base = static_cast<long>(v) * 8;
      sight(v, "plate:" + std::to_string(base + tick));
    });
  }
  sim.at(sim::seconds(90), [&] { sight(1, kWatchlist); });

  sim.run_until(sim::minutes(5));

  // --- report ------------------------------------------------------------------
  std::printf("\nPer-vehicle summary (5-minute patrol):\n");
  std::printf("%-8s %10s %13s %8s %14s\n", "vehicle", "sightings",
              "recognitions", "reused", "mean A3 ms");
  for (std::size_t v = 0; v < fleet.size(); ++v) {
    std::printf("%-8s %10d %13d %8d %14.1f\n", fleet[v]->name().c_str(),
                stats[v].sightings, stats[v].recognitions, stats[v].reused,
                stats[v].pipeline_ms.mean());
  }
  int total_reused = 0;
  for (const auto& s : stats) total_reused += s.reused;
  double gflop_saved =
      total_reused * (workload::apps::license_plate_pipeline().total_gflop());
  std::printf(
      "\nCollaboration saved %d recognitions (~%.0f GFLOP of CNN work) — "
      "the paper's\n'avoid executing unnecessary repeating operations' "
      "claim in action.\n",
      total_reused, gflop_saved);
  std::printf("Alert raised: %s\n", alert_raised ? "yes" : "no");
  return 0;
}
