// scenario_runner — config-driven experiment harness.
//
// Runs an OpenVDAP vehicle through a drive scenario described in JSON and
// emits a JSON metrics report, so experiments are reproducible without
// recompiling:
//
//   $ ./scenario_runner --demo > my.json     # write a template config
//   $ ./scenario_runner my.json              # run it, report to stdout
//   $ ./scenario_runner --vehicles 8 [seed] [--shards K] [--threads T]
//   $ ./scenario_runner --scale 100000 [seed] [--shards K] [--threads T]
//                       [--capture DIR]   # write trace.json/metrics.jsonl/
//                                         # shards.jsonl into DIR
//                       [--flight DIR] [--flight-incident SEC]
//                                         # always-on flight recorder; a
//                                         # scripted incident at SEC writes
//                                         # an incident-*/ bundle into DIR
//                                         # (render: vdap-report --incident)
//
// --vehicles runs N platforms through the fleet telemetry pipeline
// (core::run_fleet with no fault plan) and prints the aggregator's
// cross-vehicle rollup and per-vehicle transport tables on exit.
// --scale runs the lightweight fleet-at-scale path (core::run_fleet_scale,
// DESIGN.md §6f) and prints its digest summary; both demos accept
// --shards/--threads and produce byte-identical output for any values.
//
// Config schema (all fields optional unless noted):
//   {
//     "seed": 7,
//     "vehicle": "cav-0",
//     "collectors": true,
//     "scenario": [                           // required, >= 1 segment
//       {"duration_s": 120, "speed_mph": 0, "rsu": true, "neighbor": false},
//       ...
//     ],
//     "services": [                           // required, >= 1 stream
//       {"name": "license-plate", "period_ms": 500},
//       ...
//     ]
//   }
// Service names come from the standard portfolio (install_standard_services).
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "core/fleet.hpp"
#include "core/fleet_scale.hpp"
#include "core/platform.hpp"
#include "telemetry/export.hpp"

using namespace vdap;

namespace {

const char* kDemoConfig = R"({
  "seed": 7,
  "vehicle": "demo-cav",
  "collectors": true,
  "scenario": [
    {"duration_s": 60,  "speed_mph": 0,  "rsu": true,  "neighbor": false},
    {"duration_s": 120, "speed_mph": 35, "rsu": true,  "neighbor": false},
    {"duration_s": 120, "speed_mph": 70, "rsu": false, "neighbor": false},
    {"duration_s": 60,  "speed_mph": 25, "rsu": true,  "neighbor": true}
  ],
  "services": [
    {"name": "license-plate", "period_ms": 500},
    {"name": "a3-kidnapper-search", "period_ms": 2000},
    {"name": "obd-diagnostics", "period_ms": 10000},
    {"name": "infotainment-chunk", "period_ms": 2000}
  ]
})";

struct ServiceStats {
  int ok = 0;
  int failed = 0;
  int misses = 0;
  util::Summary latency_ms;
  std::map<std::string, int> pipelines;
};

int run(const json::Value& config) {
  sim::Simulator sim(
      static_cast<std::uint64_t>(config.get_int("seed", 7)));
  core::PlatformConfig cfg;
  cfg.vehicle_name = config.get_string("vehicle", "cav-0");
  cfg.start_collectors = config.get_bool("collectors", false);
  core::OpenVdap cav(sim, cfg);
  cav.install_standard_services();

  // --- scenario ---------------------------------------------------------
  if (!config.contains("scenario") || config.at("scenario").size() == 0) {
    std::fprintf(stderr, "config error: 'scenario' needs >= 1 segment\n");
    return 2;
  }
  std::vector<core::ScenarioSegment> segments;
  for (const json::Value& seg : config.at("scenario").as_array()) {
    core::ScenarioSegment s;
    s.duration_s = seg.get_double("duration_s", 60.0);
    s.speed_mph = seg.get_double("speed_mph", 0.0);
    s.rsu_coverage = seg.get_bool("rsu", true);
    s.neighbor_present = seg.get_bool("neighbor", false);
    segments.push_back(s);
  }
  core::DriveScenario scenario(sim, cav.topology(), segments,
                               &cav.elastic());
  scenario.start();

  // --- service streams ------------------------------------------------------
  if (!config.contains("services") || config.at("services").size() == 0) {
    std::fprintf(stderr, "config error: 'services' needs >= 1 stream\n");
    return 2;
  }
  std::map<std::string, ServiceStats> stats;
  for (const json::Value& svc : config.at("services").as_array()) {
    std::string name = svc.get_string("name");
    if (!cav.os().has_service(name)) {
      std::fprintf(stderr, "config error: unknown service '%s'\n",
                   name.c_str());
      return 2;
    }
    sim::SimDuration period =
        sim::from_millis(svc.get_double("period_ms", 1000.0));
    sim.every(period, [&, name] {
      cav.run_service(name, [&, name](const edgeos::ServiceRunReport& r) {
        ServiceStats& st = stats[name];
        if (r.ok) {
          st.ok++;
          st.latency_ms.add(sim::to_millis(r.latency()));
          if (!r.deadline_met) st.misses++;
          st.pipelines[r.pipeline]++;
        } else {
          st.failed++;
        }
      });
    });
  }

  double total_s = scenario.total_duration_s();
  sim.run_until(sim::from_seconds(total_s));

  // --- report ------------------------------------------------------------------
  json::Value report;
  report["vehicle"] = cfg.vehicle_name;
  report["duration_s"] = total_s;
  report["energy_j"] = cav.board().energy_joules();
  report["avg_power_w"] = cav.board().energy_joules() / total_s;
  json::Value services;
  for (const auto& [name, st] : stats) {
    json::Value s;
    s["ok"] = st.ok;
    s["failed"] = st.failed;
    s["deadline_misses"] = st.misses;
    s["mean_latency_ms"] = st.latency_ms.mean();
    s["max_latency_ms"] = st.latency_ms.max();
    json::Value mix;
    for (const auto& [pipeline, n] : st.pipelines) mix[pipeline] = n;
    s["pipelines"] = mix;
    services[name] = std::move(s);
  }
  report["services"] = std::move(services);
  if (cfg.start_collectors) {
    json::Value ddi;
    ddi["disk_records"] =
        static_cast<std::int64_t>(cav.ddi().disk().record_count());
    ddi["staged_records"] = static_cast<std::int64_t>(cav.ddi().staged_count());
    ddi["cache_hit_rate"] = cav.ddi().cache().hit_rate();
    report["ddi"] = std::move(ddi);
  }
  auto deir = cav.os().deir_report();
  json::Value deir_json;
  deir_json["installed_services"] =
      static_cast<std::int64_t>(deir.installed_services);
  deir_json["hung_services"] = static_cast<std::int64_t>(deir.hung_services);
  deir_json["reinstalls"] = static_cast<std::int64_t>(deir.reinstalls);
  report["deir"] = std::move(deir_json);

  std::printf("%s\n", report.pretty().c_str());
  return 0;
}

int run_fleet_demo(int vehicles, std::uint64_t seed, int shards,
                   int threads) {
  core::FleetConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.dir_tag = "runner";
  sim::FaultPlan none;
  none.name = "none";
  core::FleetOutcome out = core::run_fleet(none, cfg);
  std::printf("fleet of %d vehicles, seed %llu: %llu frames ingested, "
              "%llu lost, %llu anomalies\n\n",
              vehicles, static_cast<unsigned long long>(seed),
              static_cast<unsigned long long>(out.frames_ingested),
              static_cast<unsigned long long>(out.lost_frames),
              static_cast<unsigned long long>(out.anomalies.size()));
  std::fputs(out.rollup_table.c_str(), stdout);
  if (!out.anomalies.empty()) std::fputs(out.anomaly_table.c_str(), stdout);
  std::fputs(out.vehicle_table.c_str(), stdout);
  return 0;
}

int run_scale_demo(int vehicles, std::uint64_t seed, int shards, int threads,
                   const std::string& capture_dir,
                   const std::string& flight_dir, int flight_incident_s) {
  core::FleetScaleConfig cfg;
  cfg.vehicles = vehicles;
  cfg.seed = seed;
  cfg.shards = shards;
  cfg.threads = threads;
  cfg.capture = !capture_dir.empty();
  // The profiling plane rides along with --capture: profile artifacts are
  // wall-plane, so they never perturb the capture/digest byte-identity
  // printed above. VDAP_PROF_INTERVAL_US tunes the sampling period.
  cfg.prof = cfg.capture;
  cfg.prof_opts = telemetry::prof::ProfOptions::from_env();
  if (!flight_dir.empty()) {
    cfg.flight = true;
    cfg.flight_opts.dir = flight_dir;
    if (flight_incident_s > 0) {
      cfg.flight_incident_at = sim::seconds(flight_incident_s);
    }
  }
  core::FleetScaleOutcome out = core::run_fleet_scale(cfg);
  std::printf("%s\n", out.summary.c_str());
  std::printf("shards=%d threads=%d epochs=%llu events=%llu\n", out.shards,
              out.threads, static_cast<unsigned long long>(out.epochs),
              static_cast<unsigned long long>(out.events_fired));
  if (cfg.capture) {
    std::error_code mkdir_ec;
    std::filesystem::create_directories(capture_dir, mkdir_ec);
    const std::string trace = capture_dir + "/trace.json";
    const std::string metrics = capture_dir + "/metrics.jsonl";
    const std::string shards_path = capture_dir + "/shards.jsonl";
    if (!telemetry::write_text_file(trace, out.chrome_trace) ||
        !telemetry::write_text_file(metrics, out.metrics_jsonl) ||
        !telemetry::write_text_file(shards_path, out.shards_jsonl)) {
      std::fprintf(stderr, "cannot write capture artifacts under %s\n",
                   capture_dir.c_str());
      return 1;
    }
    std::printf("capture: %llu trace events, %llu open spans -> %s, %s, %s\n",
                static_cast<unsigned long long>(out.trace_events),
                static_cast<unsigned long long>(out.open_spans), trace.c_str(),
                metrics.c_str(), shards_path.c_str());
    const std::string prof_jsonl = capture_dir + "/profile.jsonl";
    const std::string prof_folded = capture_dir + "/profile.folded";
    if (!telemetry::write_text_file(prof_jsonl, out.profile_jsonl) ||
        !telemetry::write_text_file(prof_folded, out.profile_folded)) {
      std::fprintf(stderr, "cannot write profile artifacts under %s\n",
                   capture_dir.c_str());
      return 1;
    }
    std::printf("profile: %llu sampler ticks -> %s, %s\n",
                static_cast<unsigned long long>(out.prof_samples),
                prof_jsonl.c_str(), prof_folded.c_str());
  }
  if (cfg.flight) {
    std::printf("flight: %llu records folded, %llu triggers, %llu dropped\n",
                static_cast<unsigned long long>(out.flight_folded),
                static_cast<unsigned long long>(out.flight_triggers),
                static_cast<unsigned long long>(out.flight_scratch_dropped));
    for (const telemetry::FlightRecorder::Bundle& b : out.flight_bundles) {
      std::printf("flight bundle: %s\n", b.dir.c_str());
    }
    if (out.flight_bundles.empty()) {
      std::printf("flight: no incidents (pass --flight-incident SEC to "
                  "script one)\n");
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc >= 2 ? argv[1] : "";
  if (argc >= 3 && (mode == "--vehicles" || mode == "--scale")) {
    int n = std::atoi(argv[2]);
    if (mode == "--vehicles" && n < 2) {
      std::fprintf(stderr, "--vehicles needs N >= 2\n");
      return 2;
    }
    if (mode == "--scale" && n < 1) {
      std::fprintf(stderr, "--scale needs N >= 1\n");
      return 2;
    }
    std::uint64_t seed = 7;
    int shards = 1;
    int threads = 1;
    int pos = 3;
    if (pos < argc && argv[pos][0] != '-') {
      seed = std::strtoull(argv[pos++], nullptr, 10);
    }
    std::string capture_dir;
    std::string flight_dir;
    int flight_incident_s = 0;
    for (; pos < argc; ++pos) {
      const std::string flag = argv[pos];
      if (flag == "--shards" && pos + 1 < argc) {
        shards = std::atoi(argv[++pos]);
      } else if (flag == "--threads" && pos + 1 < argc) {
        threads = std::atoi(argv[++pos]);
      } else if (flag == "--capture" && pos + 1 < argc && mode == "--scale") {
        capture_dir = argv[++pos];
      } else if (flag == "--flight" && pos + 1 < argc && mode == "--scale") {
        flight_dir = argv[++pos];
      } else if (flag == "--flight-incident" && pos + 1 < argc &&
                 mode == "--scale") {
        flight_incident_s = std::atoi(argv[++pos]);
      } else {
        std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
        return 2;
      }
    }
    if (shards < 1 || threads < 1) {
      std::fprintf(stderr, "--shards/--threads need values >= 1\n");
      return 2;
    }
    return mode == "--vehicles"
               ? run_fleet_demo(n, seed, shards, threads)
               : run_scale_demo(n, seed, shards, threads, capture_dir,
                                flight_dir, flight_incident_s);
  }
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s <config.json>  (or --demo to print a template,\n"
                 "       or --vehicles N [seed] [--shards K] [--threads T],\n"
                 "       or --scale N [seed] [--shards K] [--threads T] "
                 "[--capture DIR]\n"
                 "                [--flight DIR] [--flight-incident SEC])\n",
                 argv[0]);
    return 2;
  }
  if (std::string(argv[1]) == "--demo") {
    std::printf("%s\n", kDemoConfig);
    return 0;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", argv[1]);
    return 2;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  auto config = json::try_parse(buf.str());
  if (!config) {
    std::fprintf(stderr, "%s is not valid JSON\n", argv[1]);
    return 2;
  }
  return run(*config);
}
