# Empty dependencies file for amber_alert.
# This may be replaced when dependencies are built.
