file(REMOVE_RECURSE
  "CMakeFiles/amber_alert.dir/amber_alert.cpp.o"
  "CMakeFiles/amber_alert.dir/amber_alert.cpp.o.d"
  "amber_alert"
  "amber_alert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/amber_alert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
