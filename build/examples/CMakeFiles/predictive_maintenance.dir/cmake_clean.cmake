file(REMOVE_RECURSE
  "CMakeFiles/predictive_maintenance.dir/predictive_maintenance.cpp.o"
  "CMakeFiles/predictive_maintenance.dir/predictive_maintenance.cpp.o.d"
  "predictive_maintenance"
  "predictive_maintenance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictive_maintenance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
