# Empty dependencies file for commute.
# This may be replaced when dependencies are built.
