file(REMOVE_RECURSE
  "CMakeFiles/commute.dir/commute.cpp.o"
  "CMakeFiles/commute.dir/commute.cpp.o.d"
  "commute"
  "commute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/commute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
