file(REMOVE_RECURSE
  "CMakeFiles/bench_ddi.dir/bench_ddi.cpp.o"
  "CMakeFiles/bench_ddi.dir/bench_ddi.cpp.o.d"
  "bench_ddi"
  "bench_ddi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ddi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
