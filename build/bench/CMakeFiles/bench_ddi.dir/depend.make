# Empty dependencies file for bench_ddi.
# This may be replaced when dependencies are built.
