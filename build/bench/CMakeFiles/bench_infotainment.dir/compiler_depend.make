# Empty compiler generated dependencies file for bench_infotainment.
# This may be replaced when dependencies are built.
