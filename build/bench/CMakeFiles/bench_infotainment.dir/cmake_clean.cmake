file(REMOVE_RECURSE
  "CMakeFiles/bench_infotainment.dir/bench_infotainment.cpp.o"
  "CMakeFiles/bench_infotainment.dir/bench_infotainment.cpp.o.d"
  "bench_infotainment"
  "bench_infotainment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_infotainment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
