# Empty dependencies file for bench_xedge.
# This may be replaced when dependencies are built.
