file(REMOVE_RECURSE
  "CMakeFiles/bench_xedge.dir/bench_xedge.cpp.o"
  "CMakeFiles/bench_xedge.dir/bench_xedge.cpp.o.d"
  "bench_xedge"
  "bench_xedge.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_xedge.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
