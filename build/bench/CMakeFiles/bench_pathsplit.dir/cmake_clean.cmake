file(REMOVE_RECURSE
  "CMakeFiles/bench_pathsplit.dir/bench_pathsplit.cpp.o"
  "CMakeFiles/bench_pathsplit.dir/bench_pathsplit.cpp.o.d"
  "bench_pathsplit"
  "bench_pathsplit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pathsplit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
