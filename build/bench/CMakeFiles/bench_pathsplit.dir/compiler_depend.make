# Empty compiler generated dependencies file for bench_pathsplit.
# This may be replaced when dependencies are built.
