# Empty compiler generated dependencies file for bench_pbeam.
# This may be replaced when dependencies are built.
