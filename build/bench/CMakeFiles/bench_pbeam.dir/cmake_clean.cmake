file(REMOVE_RECURSE
  "CMakeFiles/bench_pbeam.dir/bench_pbeam.cpp.o"
  "CMakeFiles/bench_pbeam.dir/bench_pbeam.cpp.o.d"
  "bench_pbeam"
  "bench_pbeam.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pbeam.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
