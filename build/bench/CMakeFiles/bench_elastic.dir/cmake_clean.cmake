file(REMOVE_RECURSE
  "CMakeFiles/bench_elastic.dir/bench_elastic.cpp.o"
  "CMakeFiles/bench_elastic.dir/bench_elastic.cpp.o.d"
  "bench_elastic"
  "bench_elastic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_elastic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
