# Empty compiler generated dependencies file for bench_elastic.
# This may be replaced when dependencies are built.
