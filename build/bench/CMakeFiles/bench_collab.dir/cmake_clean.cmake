file(REMOVE_RECURSE
  "CMakeFiles/bench_collab.dir/bench_collab.cpp.o"
  "CMakeFiles/bench_collab.dir/bench_collab.cpp.o.d"
  "bench_collab"
  "bench_collab.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_collab.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
