# Empty compiler generated dependencies file for bench_collab.
# This may be replaced when dependencies are built.
