# Empty compiler generated dependencies file for bench_battery.
# This may be replaced when dependencies are built.
