file(REMOVE_RECURSE
  "CMakeFiles/bench_battery.dir/bench_battery.cpp.o"
  "CMakeFiles/bench_battery.dir/bench_battery.cpp.o.d"
  "bench_battery"
  "bench_battery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_battery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
