file(REMOVE_RECURSE
  "CMakeFiles/bench_dsf.dir/bench_dsf.cpp.o"
  "CMakeFiles/bench_dsf.dir/bench_dsf.cpp.o.d"
  "bench_dsf"
  "bench_dsf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dsf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
