# Empty compiler generated dependencies file for bench_dsf.
# This may be replaced when dependencies are built.
