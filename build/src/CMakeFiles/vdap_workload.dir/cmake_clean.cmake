file(REMOVE_RECURSE
  "CMakeFiles/vdap_workload.dir/workload/apps.cpp.o"
  "CMakeFiles/vdap_workload.dir/workload/apps.cpp.o.d"
  "CMakeFiles/vdap_workload.dir/workload/dag.cpp.o"
  "CMakeFiles/vdap_workload.dir/workload/dag.cpp.o.d"
  "CMakeFiles/vdap_workload.dir/workload/generator.cpp.o"
  "CMakeFiles/vdap_workload.dir/workload/generator.cpp.o.d"
  "CMakeFiles/vdap_workload.dir/workload/task.cpp.o"
  "CMakeFiles/vdap_workload.dir/workload/task.cpp.o.d"
  "libvdap_workload.a"
  "libvdap_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
