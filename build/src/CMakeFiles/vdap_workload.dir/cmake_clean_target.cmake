file(REMOVE_RECURSE
  "libvdap_workload.a"
)
