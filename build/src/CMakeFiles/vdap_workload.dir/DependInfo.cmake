
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/apps.cpp" "src/CMakeFiles/vdap_workload.dir/workload/apps.cpp.o" "gcc" "src/CMakeFiles/vdap_workload.dir/workload/apps.cpp.o.d"
  "/root/repo/src/workload/dag.cpp" "src/CMakeFiles/vdap_workload.dir/workload/dag.cpp.o" "gcc" "src/CMakeFiles/vdap_workload.dir/workload/dag.cpp.o.d"
  "/root/repo/src/workload/generator.cpp" "src/CMakeFiles/vdap_workload.dir/workload/generator.cpp.o" "gcc" "src/CMakeFiles/vdap_workload.dir/workload/generator.cpp.o.d"
  "/root/repo/src/workload/task.cpp" "src/CMakeFiles/vdap_workload.dir/workload/task.cpp.o" "gcc" "src/CMakeFiles/vdap_workload.dir/workload/task.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
