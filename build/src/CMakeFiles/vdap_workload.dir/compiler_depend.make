# Empty compiler generated dependencies file for vdap_workload.
# This may be replaced when dependencies are built.
