
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cellular.cpp" "src/CMakeFiles/vdap_net.dir/net/cellular.cpp.o" "gcc" "src/CMakeFiles/vdap_net.dir/net/cellular.cpp.o.d"
  "/root/repo/src/net/coverage.cpp" "src/CMakeFiles/vdap_net.dir/net/coverage.cpp.o" "gcc" "src/CMakeFiles/vdap_net.dir/net/coverage.cpp.o.d"
  "/root/repo/src/net/link.cpp" "src/CMakeFiles/vdap_net.dir/net/link.cpp.o" "gcc" "src/CMakeFiles/vdap_net.dir/net/link.cpp.o.d"
  "/root/repo/src/net/topology.cpp" "src/CMakeFiles/vdap_net.dir/net/topology.cpp.o" "gcc" "src/CMakeFiles/vdap_net.dir/net/topology.cpp.o.d"
  "/root/repo/src/net/video.cpp" "src/CMakeFiles/vdap_net.dir/net/video.cpp.o" "gcc" "src/CMakeFiles/vdap_net.dir/net/video.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
