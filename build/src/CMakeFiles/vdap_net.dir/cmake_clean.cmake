file(REMOVE_RECURSE
  "CMakeFiles/vdap_net.dir/net/cellular.cpp.o"
  "CMakeFiles/vdap_net.dir/net/cellular.cpp.o.d"
  "CMakeFiles/vdap_net.dir/net/coverage.cpp.o"
  "CMakeFiles/vdap_net.dir/net/coverage.cpp.o.d"
  "CMakeFiles/vdap_net.dir/net/link.cpp.o"
  "CMakeFiles/vdap_net.dir/net/link.cpp.o.d"
  "CMakeFiles/vdap_net.dir/net/topology.cpp.o"
  "CMakeFiles/vdap_net.dir/net/topology.cpp.o.d"
  "CMakeFiles/vdap_net.dir/net/video.cpp.o"
  "CMakeFiles/vdap_net.dir/net/video.cpp.o.d"
  "libvdap_net.a"
  "libvdap_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
