# Empty compiler generated dependencies file for vdap_net.
# This may be replaced when dependencies are built.
