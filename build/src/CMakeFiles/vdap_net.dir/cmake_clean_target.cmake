file(REMOVE_RECURSE
  "libvdap_net.a"
)
