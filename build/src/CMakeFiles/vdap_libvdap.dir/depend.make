# Empty dependencies file for vdap_libvdap.
# This may be replaced when dependencies are built.
