file(REMOVE_RECURSE
  "CMakeFiles/vdap_libvdap.dir/libvdap/api.cpp.o"
  "CMakeFiles/vdap_libvdap.dir/libvdap/api.cpp.o.d"
  "CMakeFiles/vdap_libvdap.dir/libvdap/compress.cpp.o"
  "CMakeFiles/vdap_libvdap.dir/libvdap/compress.cpp.o.d"
  "CMakeFiles/vdap_libvdap.dir/libvdap/models.cpp.o"
  "CMakeFiles/vdap_libvdap.dir/libvdap/models.cpp.o.d"
  "CMakeFiles/vdap_libvdap.dir/libvdap/nn.cpp.o"
  "CMakeFiles/vdap_libvdap.dir/libvdap/nn.cpp.o.d"
  "CMakeFiles/vdap_libvdap.dir/libvdap/pbeam.cpp.o"
  "CMakeFiles/vdap_libvdap.dir/libvdap/pbeam.cpp.o.d"
  "CMakeFiles/vdap_libvdap.dir/libvdap/tensor.cpp.o"
  "CMakeFiles/vdap_libvdap.dir/libvdap/tensor.cpp.o.d"
  "libvdap_libvdap.a"
  "libvdap_libvdap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_libvdap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
