file(REMOVE_RECURSE
  "libvdap_libvdap.a"
)
