
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/libvdap/api.cpp" "src/CMakeFiles/vdap_libvdap.dir/libvdap/api.cpp.o" "gcc" "src/CMakeFiles/vdap_libvdap.dir/libvdap/api.cpp.o.d"
  "/root/repo/src/libvdap/compress.cpp" "src/CMakeFiles/vdap_libvdap.dir/libvdap/compress.cpp.o" "gcc" "src/CMakeFiles/vdap_libvdap.dir/libvdap/compress.cpp.o.d"
  "/root/repo/src/libvdap/models.cpp" "src/CMakeFiles/vdap_libvdap.dir/libvdap/models.cpp.o" "gcc" "src/CMakeFiles/vdap_libvdap.dir/libvdap/models.cpp.o.d"
  "/root/repo/src/libvdap/nn.cpp" "src/CMakeFiles/vdap_libvdap.dir/libvdap/nn.cpp.o" "gcc" "src/CMakeFiles/vdap_libvdap.dir/libvdap/nn.cpp.o.d"
  "/root/repo/src/libvdap/pbeam.cpp" "src/CMakeFiles/vdap_libvdap.dir/libvdap/pbeam.cpp.o" "gcc" "src/CMakeFiles/vdap_libvdap.dir/libvdap/pbeam.cpp.o.d"
  "/root/repo/src/libvdap/tensor.cpp" "src/CMakeFiles/vdap_libvdap.dir/libvdap/tensor.cpp.o" "gcc" "src/CMakeFiles/vdap_libvdap.dir/libvdap/tensor.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_ddi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_vcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
