file(REMOVE_RECURSE
  "CMakeFiles/vdap_ddi.dir/ddi/cloudsync.cpp.o"
  "CMakeFiles/vdap_ddi.dir/ddi/cloudsync.cpp.o.d"
  "CMakeFiles/vdap_ddi.dir/ddi/collectors.cpp.o"
  "CMakeFiles/vdap_ddi.dir/ddi/collectors.cpp.o.d"
  "CMakeFiles/vdap_ddi.dir/ddi/ddi.cpp.o"
  "CMakeFiles/vdap_ddi.dir/ddi/ddi.cpp.o.d"
  "CMakeFiles/vdap_ddi.dir/ddi/diskdb.cpp.o"
  "CMakeFiles/vdap_ddi.dir/ddi/diskdb.cpp.o.d"
  "CMakeFiles/vdap_ddi.dir/ddi/memdb.cpp.o"
  "CMakeFiles/vdap_ddi.dir/ddi/memdb.cpp.o.d"
  "CMakeFiles/vdap_ddi.dir/ddi/record.cpp.o"
  "CMakeFiles/vdap_ddi.dir/ddi/record.cpp.o.d"
  "libvdap_ddi.a"
  "libvdap_ddi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_ddi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
