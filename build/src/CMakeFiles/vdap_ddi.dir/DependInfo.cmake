
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ddi/cloudsync.cpp" "src/CMakeFiles/vdap_ddi.dir/ddi/cloudsync.cpp.o" "gcc" "src/CMakeFiles/vdap_ddi.dir/ddi/cloudsync.cpp.o.d"
  "/root/repo/src/ddi/collectors.cpp" "src/CMakeFiles/vdap_ddi.dir/ddi/collectors.cpp.o" "gcc" "src/CMakeFiles/vdap_ddi.dir/ddi/collectors.cpp.o.d"
  "/root/repo/src/ddi/ddi.cpp" "src/CMakeFiles/vdap_ddi.dir/ddi/ddi.cpp.o" "gcc" "src/CMakeFiles/vdap_ddi.dir/ddi/ddi.cpp.o.d"
  "/root/repo/src/ddi/diskdb.cpp" "src/CMakeFiles/vdap_ddi.dir/ddi/diskdb.cpp.o" "gcc" "src/CMakeFiles/vdap_ddi.dir/ddi/diskdb.cpp.o.d"
  "/root/repo/src/ddi/memdb.cpp" "src/CMakeFiles/vdap_ddi.dir/ddi/memdb.cpp.o" "gcc" "src/CMakeFiles/vdap_ddi.dir/ddi/memdb.cpp.o.d"
  "/root/repo/src/ddi/record.cpp" "src/CMakeFiles/vdap_ddi.dir/ddi/record.cpp.o" "gcc" "src/CMakeFiles/vdap_ddi.dir/ddi/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
