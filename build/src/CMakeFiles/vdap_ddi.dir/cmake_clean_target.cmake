file(REMOVE_RECURSE
  "libvdap_ddi.a"
)
