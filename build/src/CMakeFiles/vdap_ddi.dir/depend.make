# Empty dependencies file for vdap_ddi.
# This may be replaced when dependencies are built.
