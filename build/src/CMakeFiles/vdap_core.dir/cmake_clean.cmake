file(REMOVE_RECURSE
  "CMakeFiles/vdap_core.dir/core/battery.cpp.o"
  "CMakeFiles/vdap_core.dir/core/battery.cpp.o.d"
  "CMakeFiles/vdap_core.dir/core/collaboration.cpp.o"
  "CMakeFiles/vdap_core.dir/core/collaboration.cpp.o.d"
  "CMakeFiles/vdap_core.dir/core/infotainment.cpp.o"
  "CMakeFiles/vdap_core.dir/core/infotainment.cpp.o.d"
  "CMakeFiles/vdap_core.dir/core/offload.cpp.o"
  "CMakeFiles/vdap_core.dir/core/offload.cpp.o.d"
  "CMakeFiles/vdap_core.dir/core/platform.cpp.o"
  "CMakeFiles/vdap_core.dir/core/platform.cpp.o.d"
  "CMakeFiles/vdap_core.dir/core/scenario.cpp.o"
  "CMakeFiles/vdap_core.dir/core/scenario.cpp.o.d"
  "libvdap_core.a"
  "libvdap_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
