file(REMOVE_RECURSE
  "libvdap_core.a"
)
