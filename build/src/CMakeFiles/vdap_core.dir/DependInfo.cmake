
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/battery.cpp" "src/CMakeFiles/vdap_core.dir/core/battery.cpp.o" "gcc" "src/CMakeFiles/vdap_core.dir/core/battery.cpp.o.d"
  "/root/repo/src/core/collaboration.cpp" "src/CMakeFiles/vdap_core.dir/core/collaboration.cpp.o" "gcc" "src/CMakeFiles/vdap_core.dir/core/collaboration.cpp.o.d"
  "/root/repo/src/core/infotainment.cpp" "src/CMakeFiles/vdap_core.dir/core/infotainment.cpp.o" "gcc" "src/CMakeFiles/vdap_core.dir/core/infotainment.cpp.o.d"
  "/root/repo/src/core/offload.cpp" "src/CMakeFiles/vdap_core.dir/core/offload.cpp.o" "gcc" "src/CMakeFiles/vdap_core.dir/core/offload.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/CMakeFiles/vdap_core.dir/core/platform.cpp.o" "gcc" "src/CMakeFiles/vdap_core.dir/core/platform.cpp.o.d"
  "/root/repo/src/core/scenario.cpp" "src/CMakeFiles/vdap_core.dir/core/scenario.cpp.o" "gcc" "src/CMakeFiles/vdap_core.dir/core/scenario.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_edgeos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_ddi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_libvdap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_vcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
