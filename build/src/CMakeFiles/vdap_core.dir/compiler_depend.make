# Empty compiler generated dependencies file for vdap_core.
# This may be replaced when dependencies are built.
