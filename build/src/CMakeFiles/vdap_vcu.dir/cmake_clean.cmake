file(REMOVE_RECURSE
  "CMakeFiles/vdap_vcu.dir/vcu/dsf.cpp.o"
  "CMakeFiles/vdap_vcu.dir/vcu/dsf.cpp.o.d"
  "CMakeFiles/vdap_vcu.dir/vcu/partitioner.cpp.o"
  "CMakeFiles/vdap_vcu.dir/vcu/partitioner.cpp.o.d"
  "CMakeFiles/vdap_vcu.dir/vcu/profile.cpp.o"
  "CMakeFiles/vdap_vcu.dir/vcu/profile.cpp.o.d"
  "CMakeFiles/vdap_vcu.dir/vcu/registry.cpp.o"
  "CMakeFiles/vdap_vcu.dir/vcu/registry.cpp.o.d"
  "CMakeFiles/vdap_vcu.dir/vcu/scheduler.cpp.o"
  "CMakeFiles/vdap_vcu.dir/vcu/scheduler.cpp.o.d"
  "libvdap_vcu.a"
  "libvdap_vcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_vcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
