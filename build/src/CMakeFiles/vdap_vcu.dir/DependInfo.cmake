
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vcu/dsf.cpp" "src/CMakeFiles/vdap_vcu.dir/vcu/dsf.cpp.o" "gcc" "src/CMakeFiles/vdap_vcu.dir/vcu/dsf.cpp.o.d"
  "/root/repo/src/vcu/partitioner.cpp" "src/CMakeFiles/vdap_vcu.dir/vcu/partitioner.cpp.o" "gcc" "src/CMakeFiles/vdap_vcu.dir/vcu/partitioner.cpp.o.d"
  "/root/repo/src/vcu/profile.cpp" "src/CMakeFiles/vdap_vcu.dir/vcu/profile.cpp.o" "gcc" "src/CMakeFiles/vdap_vcu.dir/vcu/profile.cpp.o.d"
  "/root/repo/src/vcu/registry.cpp" "src/CMakeFiles/vdap_vcu.dir/vcu/registry.cpp.o" "gcc" "src/CMakeFiles/vdap_vcu.dir/vcu/registry.cpp.o.d"
  "/root/repo/src/vcu/scheduler.cpp" "src/CMakeFiles/vdap_vcu.dir/vcu/scheduler.cpp.o" "gcc" "src/CMakeFiles/vdap_vcu.dir/vcu/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
