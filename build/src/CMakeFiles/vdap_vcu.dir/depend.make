# Empty dependencies file for vdap_vcu.
# This may be replaced when dependencies are built.
