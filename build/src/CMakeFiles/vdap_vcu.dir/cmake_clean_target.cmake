file(REMOVE_RECURSE
  "libvdap_vcu.a"
)
