file(REMOVE_RECURSE
  "libvdap_hw.a"
)
