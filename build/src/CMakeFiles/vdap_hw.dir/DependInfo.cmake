
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/board.cpp" "src/CMakeFiles/vdap_hw.dir/hw/board.cpp.o" "gcc" "src/CMakeFiles/vdap_hw.dir/hw/board.cpp.o.d"
  "/root/repo/src/hw/catalog.cpp" "src/CMakeFiles/vdap_hw.dir/hw/catalog.cpp.o" "gcc" "src/CMakeFiles/vdap_hw.dir/hw/catalog.cpp.o.d"
  "/root/repo/src/hw/processor.cpp" "src/CMakeFiles/vdap_hw.dir/hw/processor.cpp.o" "gcc" "src/CMakeFiles/vdap_hw.dir/hw/processor.cpp.o.d"
  "/root/repo/src/hw/storage.cpp" "src/CMakeFiles/vdap_hw.dir/hw/storage.cpp.o" "gcc" "src/CMakeFiles/vdap_hw.dir/hw/storage.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
