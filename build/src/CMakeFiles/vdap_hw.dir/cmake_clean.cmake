file(REMOVE_RECURSE
  "CMakeFiles/vdap_hw.dir/hw/board.cpp.o"
  "CMakeFiles/vdap_hw.dir/hw/board.cpp.o.d"
  "CMakeFiles/vdap_hw.dir/hw/catalog.cpp.o"
  "CMakeFiles/vdap_hw.dir/hw/catalog.cpp.o.d"
  "CMakeFiles/vdap_hw.dir/hw/processor.cpp.o"
  "CMakeFiles/vdap_hw.dir/hw/processor.cpp.o.d"
  "CMakeFiles/vdap_hw.dir/hw/storage.cpp.o"
  "CMakeFiles/vdap_hw.dir/hw/storage.cpp.o.d"
  "libvdap_hw.a"
  "libvdap_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
