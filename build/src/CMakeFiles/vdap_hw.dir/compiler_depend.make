# Empty compiler generated dependencies file for vdap_hw.
# This may be replaced when dependencies are built.
