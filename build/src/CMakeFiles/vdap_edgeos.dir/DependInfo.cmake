
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/edgeos/edgeos.cpp" "src/CMakeFiles/vdap_edgeos.dir/edgeos/edgeos.cpp.o" "gcc" "src/CMakeFiles/vdap_edgeos.dir/edgeos/edgeos.cpp.o.d"
  "/root/repo/src/edgeos/elastic.cpp" "src/CMakeFiles/vdap_edgeos.dir/edgeos/elastic.cpp.o" "gcc" "src/CMakeFiles/vdap_edgeos.dir/edgeos/elastic.cpp.o.d"
  "/root/repo/src/edgeos/privacy.cpp" "src/CMakeFiles/vdap_edgeos.dir/edgeos/privacy.cpp.o" "gcc" "src/CMakeFiles/vdap_edgeos.dir/edgeos/privacy.cpp.o.d"
  "/root/repo/src/edgeos/security.cpp" "src/CMakeFiles/vdap_edgeos.dir/edgeos/security.cpp.o" "gcc" "src/CMakeFiles/vdap_edgeos.dir/edgeos/security.cpp.o.d"
  "/root/repo/src/edgeos/service.cpp" "src/CMakeFiles/vdap_edgeos.dir/edgeos/service.cpp.o" "gcc" "src/CMakeFiles/vdap_edgeos.dir/edgeos/service.cpp.o.d"
  "/root/repo/src/edgeos/sharing.cpp" "src/CMakeFiles/vdap_edgeos.dir/edgeos/sharing.cpp.o" "gcc" "src/CMakeFiles/vdap_edgeos.dir/edgeos/sharing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_vcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
