# Empty compiler generated dependencies file for vdap_edgeos.
# This may be replaced when dependencies are built.
