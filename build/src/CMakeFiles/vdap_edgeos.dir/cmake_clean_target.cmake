file(REMOVE_RECURSE
  "libvdap_edgeos.a"
)
