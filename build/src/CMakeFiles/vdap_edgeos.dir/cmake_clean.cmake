file(REMOVE_RECURSE
  "CMakeFiles/vdap_edgeos.dir/edgeos/edgeos.cpp.o"
  "CMakeFiles/vdap_edgeos.dir/edgeos/edgeos.cpp.o.d"
  "CMakeFiles/vdap_edgeos.dir/edgeos/elastic.cpp.o"
  "CMakeFiles/vdap_edgeos.dir/edgeos/elastic.cpp.o.d"
  "CMakeFiles/vdap_edgeos.dir/edgeos/privacy.cpp.o"
  "CMakeFiles/vdap_edgeos.dir/edgeos/privacy.cpp.o.d"
  "CMakeFiles/vdap_edgeos.dir/edgeos/security.cpp.o"
  "CMakeFiles/vdap_edgeos.dir/edgeos/security.cpp.o.d"
  "CMakeFiles/vdap_edgeos.dir/edgeos/service.cpp.o"
  "CMakeFiles/vdap_edgeos.dir/edgeos/service.cpp.o.d"
  "CMakeFiles/vdap_edgeos.dir/edgeos/sharing.cpp.o"
  "CMakeFiles/vdap_edgeos.dir/edgeos/sharing.cpp.o.d"
  "libvdap_edgeos.a"
  "libvdap_edgeos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_edgeos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
