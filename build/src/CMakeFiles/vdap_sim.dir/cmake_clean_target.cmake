file(REMOVE_RECURSE
  "libvdap_sim.a"
)
