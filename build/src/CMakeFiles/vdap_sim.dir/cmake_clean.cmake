file(REMOVE_RECURSE
  "CMakeFiles/vdap_sim.dir/sim/event_queue.cpp.o"
  "CMakeFiles/vdap_sim.dir/sim/event_queue.cpp.o.d"
  "CMakeFiles/vdap_sim.dir/sim/simulator.cpp.o"
  "CMakeFiles/vdap_sim.dir/sim/simulator.cpp.o.d"
  "libvdap_sim.a"
  "libvdap_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
