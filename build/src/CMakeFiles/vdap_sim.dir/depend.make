# Empty dependencies file for vdap_sim.
# This may be replaced when dependencies are built.
