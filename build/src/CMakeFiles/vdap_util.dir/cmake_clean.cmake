file(REMOVE_RECURSE
  "CMakeFiles/vdap_util.dir/util/json.cpp.o"
  "CMakeFiles/vdap_util.dir/util/json.cpp.o.d"
  "CMakeFiles/vdap_util.dir/util/stats.cpp.o"
  "CMakeFiles/vdap_util.dir/util/stats.cpp.o.d"
  "CMakeFiles/vdap_util.dir/util/strings.cpp.o"
  "CMakeFiles/vdap_util.dir/util/strings.cpp.o.d"
  "libvdap_util.a"
  "libvdap_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vdap_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
