file(REMOVE_RECURSE
  "libvdap_util.a"
)
