# Empty dependencies file for vdap_util.
# This may be replaced when dependencies are built.
