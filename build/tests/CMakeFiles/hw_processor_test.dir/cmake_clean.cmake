file(REMOVE_RECURSE
  "CMakeFiles/hw_processor_test.dir/hw_processor_test.cpp.o"
  "CMakeFiles/hw_processor_test.dir/hw_processor_test.cpp.o.d"
  "hw_processor_test"
  "hw_processor_test.pdb"
  "hw_processor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_processor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
