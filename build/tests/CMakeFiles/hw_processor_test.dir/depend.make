# Empty dependencies file for hw_processor_test.
# This may be replaced when dependencies are built.
