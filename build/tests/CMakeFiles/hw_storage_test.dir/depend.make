# Empty dependencies file for hw_storage_test.
# This may be replaced when dependencies are built.
