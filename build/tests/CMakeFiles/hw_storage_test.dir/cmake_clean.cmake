file(REMOVE_RECURSE
  "CMakeFiles/hw_storage_test.dir/hw_storage_test.cpp.o"
  "CMakeFiles/hw_storage_test.dir/hw_storage_test.cpp.o.d"
  "hw_storage_test"
  "hw_storage_test.pdb"
  "hw_storage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
