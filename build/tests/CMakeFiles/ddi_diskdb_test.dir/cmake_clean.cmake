file(REMOVE_RECURSE
  "CMakeFiles/ddi_diskdb_test.dir/ddi_diskdb_test.cpp.o"
  "CMakeFiles/ddi_diskdb_test.dir/ddi_diskdb_test.cpp.o.d"
  "ddi_diskdb_test"
  "ddi_diskdb_test.pdb"
  "ddi_diskdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddi_diskdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
