# Empty dependencies file for ddi_diskdb_test.
# This may be replaced when dependencies are built.
