file(REMOVE_RECURSE
  "CMakeFiles/util_json_test.dir/util_json_test.cpp.o"
  "CMakeFiles/util_json_test.dir/util_json_test.cpp.o.d"
  "util_json_test"
  "util_json_test.pdb"
  "util_json_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/util_json_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
