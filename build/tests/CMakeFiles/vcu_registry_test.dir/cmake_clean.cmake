file(REMOVE_RECURSE
  "CMakeFiles/vcu_registry_test.dir/vcu_registry_test.cpp.o"
  "CMakeFiles/vcu_registry_test.dir/vcu_registry_test.cpp.o.d"
  "vcu_registry_test"
  "vcu_registry_test.pdb"
  "vcu_registry_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcu_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
