# Empty compiler generated dependencies file for vcu_registry_test.
# This may be replaced when dependencies are built.
