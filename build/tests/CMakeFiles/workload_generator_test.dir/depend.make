# Empty dependencies file for workload_generator_test.
# This may be replaced when dependencies are built.
