file(REMOVE_RECURSE
  "CMakeFiles/workload_generator_test.dir/workload_generator_test.cpp.o"
  "CMakeFiles/workload_generator_test.dir/workload_generator_test.cpp.o.d"
  "workload_generator_test"
  "workload_generator_test.pdb"
  "workload_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
