file(REMOVE_RECURSE
  "CMakeFiles/ddi_memdb_test.dir/ddi_memdb_test.cpp.o"
  "CMakeFiles/ddi_memdb_test.dir/ddi_memdb_test.cpp.o.d"
  "ddi_memdb_test"
  "ddi_memdb_test.pdb"
  "ddi_memdb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddi_memdb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
