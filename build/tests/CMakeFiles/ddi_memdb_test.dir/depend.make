# Empty dependencies file for ddi_memdb_test.
# This may be replaced when dependencies are built.
