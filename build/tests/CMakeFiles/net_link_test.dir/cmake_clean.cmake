file(REMOVE_RECURSE
  "CMakeFiles/net_link_test.dir/net_link_test.cpp.o"
  "CMakeFiles/net_link_test.dir/net_link_test.cpp.o.d"
  "net_link_test"
  "net_link_test.pdb"
  "net_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
