# Empty compiler generated dependencies file for net_link_test.
# This may be replaced when dependencies are built.
