file(REMOVE_RECURSE
  "CMakeFiles/libvdap_nn_test.dir/libvdap_nn_test.cpp.o"
  "CMakeFiles/libvdap_nn_test.dir/libvdap_nn_test.cpp.o.d"
  "libvdap_nn_test"
  "libvdap_nn_test.pdb"
  "libvdap_nn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libvdap_nn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
