# Empty dependencies file for libvdap_nn_test.
# This may be replaced when dependencies are built.
