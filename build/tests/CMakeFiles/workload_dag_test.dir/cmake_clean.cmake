file(REMOVE_RECURSE
  "CMakeFiles/workload_dag_test.dir/workload_dag_test.cpp.o"
  "CMakeFiles/workload_dag_test.dir/workload_dag_test.cpp.o.d"
  "workload_dag_test"
  "workload_dag_test.pdb"
  "workload_dag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_dag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
