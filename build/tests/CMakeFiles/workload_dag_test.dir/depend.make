# Empty dependencies file for workload_dag_test.
# This may be replaced when dependencies are built.
