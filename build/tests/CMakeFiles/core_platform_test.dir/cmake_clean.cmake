file(REMOVE_RECURSE
  "CMakeFiles/core_platform_test.dir/core_platform_test.cpp.o"
  "CMakeFiles/core_platform_test.dir/core_platform_test.cpp.o.d"
  "core_platform_test"
  "core_platform_test.pdb"
  "core_platform_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_platform_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
