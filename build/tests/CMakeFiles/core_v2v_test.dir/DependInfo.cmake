
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core_v2v_test.cpp" "tests/CMakeFiles/core_v2v_test.dir/core_v2v_test.cpp.o" "gcc" "tests/CMakeFiles/core_v2v_test.dir/core_v2v_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/vdap_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_edgeos.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_libvdap.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_ddi.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_vcu.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/vdap_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
