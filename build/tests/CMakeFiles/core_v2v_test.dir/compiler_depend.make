# Empty compiler generated dependencies file for core_v2v_test.
# This may be replaced when dependencies are built.
