file(REMOVE_RECURSE
  "CMakeFiles/core_v2v_test.dir/core_v2v_test.cpp.o"
  "CMakeFiles/core_v2v_test.dir/core_v2v_test.cpp.o.d"
  "core_v2v_test"
  "core_v2v_test.pdb"
  "core_v2v_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_v2v_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
