# Empty dependencies file for edgeos_privacy_test.
# This may be replaced when dependencies are built.
