file(REMOVE_RECURSE
  "CMakeFiles/edgeos_privacy_test.dir/edgeos_privacy_test.cpp.o"
  "CMakeFiles/edgeos_privacy_test.dir/edgeos_privacy_test.cpp.o.d"
  "edgeos_privacy_test"
  "edgeos_privacy_test.pdb"
  "edgeos_privacy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeos_privacy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
