file(REMOVE_RECURSE
  "CMakeFiles/net_coverage_test.dir/net_coverage_test.cpp.o"
  "CMakeFiles/net_coverage_test.dir/net_coverage_test.cpp.o.d"
  "net_coverage_test"
  "net_coverage_test.pdb"
  "net_coverage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_coverage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
