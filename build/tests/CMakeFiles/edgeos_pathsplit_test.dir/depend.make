# Empty dependencies file for edgeos_pathsplit_test.
# This may be replaced when dependencies are built.
