file(REMOVE_RECURSE
  "CMakeFiles/edgeos_pathsplit_test.dir/edgeos_pathsplit_test.cpp.o"
  "CMakeFiles/edgeos_pathsplit_test.dir/edgeos_pathsplit_test.cpp.o.d"
  "edgeos_pathsplit_test"
  "edgeos_pathsplit_test.pdb"
  "edgeos_pathsplit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeos_pathsplit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
