file(REMOVE_RECURSE
  "CMakeFiles/net_cellular_test.dir/net_cellular_test.cpp.o"
  "CMakeFiles/net_cellular_test.dir/net_cellular_test.cpp.o.d"
  "net_cellular_test"
  "net_cellular_test.pdb"
  "net_cellular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_cellular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
