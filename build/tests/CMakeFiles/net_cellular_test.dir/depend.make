# Empty dependencies file for net_cellular_test.
# This may be replaced when dependencies are built.
