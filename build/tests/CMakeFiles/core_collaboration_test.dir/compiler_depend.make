# Empty compiler generated dependencies file for core_collaboration_test.
# This may be replaced when dependencies are built.
