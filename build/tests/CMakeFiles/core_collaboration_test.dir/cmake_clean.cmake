file(REMOVE_RECURSE
  "CMakeFiles/core_collaboration_test.dir/core_collaboration_test.cpp.o"
  "CMakeFiles/core_collaboration_test.dir/core_collaboration_test.cpp.o.d"
  "core_collaboration_test"
  "core_collaboration_test.pdb"
  "core_collaboration_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_collaboration_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
