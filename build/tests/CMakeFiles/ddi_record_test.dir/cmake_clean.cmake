file(REMOVE_RECURSE
  "CMakeFiles/ddi_record_test.dir/ddi_record_test.cpp.o"
  "CMakeFiles/ddi_record_test.dir/ddi_record_test.cpp.o.d"
  "ddi_record_test"
  "ddi_record_test.pdb"
  "ddi_record_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddi_record_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
