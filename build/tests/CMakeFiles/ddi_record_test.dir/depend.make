# Empty dependencies file for ddi_record_test.
# This may be replaced when dependencies are built.
