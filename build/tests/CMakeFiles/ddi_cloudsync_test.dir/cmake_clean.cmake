file(REMOVE_RECURSE
  "CMakeFiles/ddi_cloudsync_test.dir/ddi_cloudsync_test.cpp.o"
  "CMakeFiles/ddi_cloudsync_test.dir/ddi_cloudsync_test.cpp.o.d"
  "ddi_cloudsync_test"
  "ddi_cloudsync_test.pdb"
  "ddi_cloudsync_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddi_cloudsync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
