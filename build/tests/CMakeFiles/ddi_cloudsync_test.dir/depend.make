# Empty dependencies file for ddi_cloudsync_test.
# This may be replaced when dependencies are built.
