file(REMOVE_RECURSE
  "CMakeFiles/ddi_service_test.dir/ddi_service_test.cpp.o"
  "CMakeFiles/ddi_service_test.dir/ddi_service_test.cpp.o.d"
  "ddi_service_test"
  "ddi_service_test.pdb"
  "ddi_service_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ddi_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
