# Empty compiler generated dependencies file for ddi_service_test.
# This may be replaced when dependencies are built.
