file(REMOVE_RECURSE
  "CMakeFiles/core_offload_test.dir/core_offload_test.cpp.o"
  "CMakeFiles/core_offload_test.dir/core_offload_test.cpp.o.d"
  "core_offload_test"
  "core_offload_test.pdb"
  "core_offload_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_offload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
