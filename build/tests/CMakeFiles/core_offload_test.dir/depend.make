# Empty dependencies file for core_offload_test.
# This may be replaced when dependencies are built.
