file(REMOVE_RECURSE
  "CMakeFiles/edgeos_sharing_test.dir/edgeos_sharing_test.cpp.o"
  "CMakeFiles/edgeos_sharing_test.dir/edgeos_sharing_test.cpp.o.d"
  "edgeos_sharing_test"
  "edgeos_sharing_test.pdb"
  "edgeos_sharing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeos_sharing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
