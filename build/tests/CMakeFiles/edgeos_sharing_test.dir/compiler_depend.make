# Empty compiler generated dependencies file for edgeos_sharing_test.
# This may be replaced when dependencies are built.
