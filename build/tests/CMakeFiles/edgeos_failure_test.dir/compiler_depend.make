# Empty compiler generated dependencies file for edgeos_failure_test.
# This may be replaced when dependencies are built.
