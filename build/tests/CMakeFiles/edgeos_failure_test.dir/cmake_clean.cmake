file(REMOVE_RECURSE
  "CMakeFiles/edgeos_failure_test.dir/edgeos_failure_test.cpp.o"
  "CMakeFiles/edgeos_failure_test.dir/edgeos_failure_test.cpp.o.d"
  "edgeos_failure_test"
  "edgeos_failure_test.pdb"
  "edgeos_failure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeos_failure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
