# Empty compiler generated dependencies file for libvdap_pbeam_test.
# This may be replaced when dependencies are built.
