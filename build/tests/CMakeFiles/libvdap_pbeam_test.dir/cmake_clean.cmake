file(REMOVE_RECURSE
  "CMakeFiles/libvdap_pbeam_test.dir/libvdap_pbeam_test.cpp.o"
  "CMakeFiles/libvdap_pbeam_test.dir/libvdap_pbeam_test.cpp.o.d"
  "libvdap_pbeam_test"
  "libvdap_pbeam_test.pdb"
  "libvdap_pbeam_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libvdap_pbeam_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
