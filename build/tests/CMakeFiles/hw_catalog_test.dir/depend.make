# Empty dependencies file for hw_catalog_test.
# This may be replaced when dependencies are built.
