file(REMOVE_RECURSE
  "CMakeFiles/hw_catalog_test.dir/hw_catalog_test.cpp.o"
  "CMakeFiles/hw_catalog_test.dir/hw_catalog_test.cpp.o.d"
  "hw_catalog_test"
  "hw_catalog_test.pdb"
  "hw_catalog_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_catalog_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
