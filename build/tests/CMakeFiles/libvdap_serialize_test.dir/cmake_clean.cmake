file(REMOVE_RECURSE
  "CMakeFiles/libvdap_serialize_test.dir/libvdap_serialize_test.cpp.o"
  "CMakeFiles/libvdap_serialize_test.dir/libvdap_serialize_test.cpp.o.d"
  "libvdap_serialize_test"
  "libvdap_serialize_test.pdb"
  "libvdap_serialize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libvdap_serialize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
