# Empty dependencies file for libvdap_serialize_test.
# This may be replaced when dependencies are built.
