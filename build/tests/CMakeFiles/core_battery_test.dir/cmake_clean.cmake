file(REMOVE_RECURSE
  "CMakeFiles/core_battery_test.dir/core_battery_test.cpp.o"
  "CMakeFiles/core_battery_test.dir/core_battery_test.cpp.o.d"
  "core_battery_test"
  "core_battery_test.pdb"
  "core_battery_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_battery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
