# Empty dependencies file for core_battery_test.
# This may be replaced when dependencies are built.
