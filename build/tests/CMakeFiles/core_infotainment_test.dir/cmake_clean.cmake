file(REMOVE_RECURSE
  "CMakeFiles/core_infotainment_test.dir/core_infotainment_test.cpp.o"
  "CMakeFiles/core_infotainment_test.dir/core_infotainment_test.cpp.o.d"
  "core_infotainment_test"
  "core_infotainment_test.pdb"
  "core_infotainment_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_infotainment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
