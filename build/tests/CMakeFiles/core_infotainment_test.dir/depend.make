# Empty dependencies file for core_infotainment_test.
# This may be replaced when dependencies are built.
