# Empty compiler generated dependencies file for vcu_dsf_test.
# This may be replaced when dependencies are built.
