file(REMOVE_RECURSE
  "CMakeFiles/vcu_dsf_test.dir/vcu_dsf_test.cpp.o"
  "CMakeFiles/vcu_dsf_test.dir/vcu_dsf_test.cpp.o.d"
  "vcu_dsf_test"
  "vcu_dsf_test.pdb"
  "vcu_dsf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcu_dsf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
