file(REMOVE_RECURSE
  "CMakeFiles/edgeos_elastic_test.dir/edgeos_elastic_test.cpp.o"
  "CMakeFiles/edgeos_elastic_test.dir/edgeos_elastic_test.cpp.o.d"
  "edgeos_elastic_test"
  "edgeos_elastic_test.pdb"
  "edgeos_elastic_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeos_elastic_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
