# Empty compiler generated dependencies file for edgeos_elastic_test.
# This may be replaced when dependencies are built.
