file(REMOVE_RECURSE
  "CMakeFiles/edgeos_security_test.dir/edgeos_security_test.cpp.o"
  "CMakeFiles/edgeos_security_test.dir/edgeos_security_test.cpp.o.d"
  "edgeos_security_test"
  "edgeos_security_test.pdb"
  "edgeos_security_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeos_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
