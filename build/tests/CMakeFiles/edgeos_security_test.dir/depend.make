# Empty dependencies file for edgeos_security_test.
# This may be replaced when dependencies are built.
