# Empty dependencies file for hw_dvfs_test.
# This may be replaced when dependencies are built.
