file(REMOVE_RECURSE
  "CMakeFiles/hw_dvfs_test.dir/hw_dvfs_test.cpp.o"
  "CMakeFiles/hw_dvfs_test.dir/hw_dvfs_test.cpp.o.d"
  "hw_dvfs_test"
  "hw_dvfs_test.pdb"
  "hw_dvfs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hw_dvfs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
