# Empty dependencies file for vcu_partitioner_test.
# This may be replaced when dependencies are built.
