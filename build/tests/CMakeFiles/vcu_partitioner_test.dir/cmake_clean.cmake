file(REMOVE_RECURSE
  "CMakeFiles/vcu_partitioner_test.dir/vcu_partitioner_test.cpp.o"
  "CMakeFiles/vcu_partitioner_test.dir/vcu_partitioner_test.cpp.o.d"
  "vcu_partitioner_test"
  "vcu_partitioner_test.pdb"
  "vcu_partitioner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcu_partitioner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
