file(REMOVE_RECURSE
  "CMakeFiles/libvdap_api_test.dir/libvdap_api_test.cpp.o"
  "CMakeFiles/libvdap_api_test.dir/libvdap_api_test.cpp.o.d"
  "libvdap_api_test"
  "libvdap_api_test.pdb"
  "libvdap_api_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libvdap_api_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
