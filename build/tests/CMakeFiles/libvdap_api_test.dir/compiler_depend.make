# Empty compiler generated dependencies file for libvdap_api_test.
# This may be replaced when dependencies are built.
