# Empty dependencies file for edgeos_facade_test.
# This may be replaced when dependencies are built.
