file(REMOVE_RECURSE
  "CMakeFiles/edgeos_facade_test.dir/edgeos_facade_test.cpp.o"
  "CMakeFiles/edgeos_facade_test.dir/edgeos_facade_test.cpp.o.d"
  "edgeos_facade_test"
  "edgeos_facade_test.pdb"
  "edgeos_facade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeos_facade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
