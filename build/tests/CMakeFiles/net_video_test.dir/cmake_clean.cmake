file(REMOVE_RECURSE
  "CMakeFiles/net_video_test.dir/net_video_test.cpp.o"
  "CMakeFiles/net_video_test.dir/net_video_test.cpp.o.d"
  "net_video_test"
  "net_video_test.pdb"
  "net_video_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/net_video_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
