# Empty dependencies file for libvdap_compress_test.
# This may be replaced when dependencies are built.
