file(REMOVE_RECURSE
  "CMakeFiles/libvdap_compress_test.dir/libvdap_compress_test.cpp.o"
  "CMakeFiles/libvdap_compress_test.dir/libvdap_compress_test.cpp.o.d"
  "libvdap_compress_test"
  "libvdap_compress_test.pdb"
  "libvdap_compress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/libvdap_compress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
